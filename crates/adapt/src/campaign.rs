//! The experiment harness behind Figures 10–13: environments x adaptation
//! schemes over a chip population and the 16-workload suite.

use eval_trace::{BufferSink, Event, Tracer};
use eval_units::GHz;

use eval_core::{
    ChipFactory, CoreModel, Environment, EvalConfig, InfeasibleConfig, PerfModel,
    VariantSelection, N_SUBSYSTEMS,
};
use eval_uarch::profile::{PhaseProfile, WorkloadProfile};
use eval_uarch::{profile_workload, ActivityVector, QueueSize, Workload};

use crate::controller::{decide_phase_traced, AdaptationTimeline, DecisionContext};
use crate::exhaustive::ExhaustiveOptimizer;
use crate::fuzzy_ctl::{FuzzyOptimizer, TrainingBudget};
use crate::optimizer::Optimizer;
use crate::retune::Outcome;

/// How configurations are chosen (the three bars per environment in
/// Figures 10–12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// One conservative configuration per chip, provisioned for worst-case
    /// activity; never re-tuned at run time.
    Static,
    /// Per-phase adaptation driven by the trained fuzzy controllers.
    FuzzyDyn,
    /// Per-phase adaptation driven by the exhaustive oracle.
    ExhDyn,
}

impl Scheme {
    /// All schemes in plot order.
    pub const ALL: [Scheme; 3] = [Scheme::Static, Scheme::FuzzyDyn, Scheme::ExhDyn];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Static => "Static",
            Scheme::FuzzyDyn => "Fuzzy-Dyn",
            Scheme::ExhDyn => "Exh-Dyn",
        }
    }

    /// Trace label (matches the per-scheme decision counter names).
    pub fn trace_label(&self) -> &'static str {
        match self {
            Scheme::Static => "static",
            Scheme::FuzzyDyn => "fuzzy",
            Scheme::ExhDyn => "exhaustive",
        }
    }
}

/// Error from a campaign run.
///
/// The reference machines and the statically provisioned configurations
/// are *supposed* to be feasible at every chip and phase; if one is not,
/// the campaign surfaces the divergence instead of panicking so batch
/// drivers (and the test harness) can report which configuration failed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CampaignError {
    /// A fixed (non-adaptive) operating point hit thermal runaway.
    Infeasible {
        /// Which fixed configuration was being evaluated.
        context: &'static str,
        /// The underlying per-subsystem divergence.
        source: InfeasibleConfig,
    },
    /// A structural invariant of the parallel chip sweep was violated.
    Internal(&'static str),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Infeasible { context, source } => {
                write!(f, "{context}: {source}")
            }
            CampaignError::Internal(what) => write!(f, "internal campaign error: {what}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Infeasible { source, .. } => Some(source),
            CampaignError::Internal(_) => None,
        }
    }
}

/// Outcome histogram over controller invocations (Figure 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeCounts {
    counts: [u64; 5],
}

impl OutcomeCounts {
    /// Records one outcome.
    pub fn add(&mut self, o: Outcome) {
        self.counts[o.index()] += 1;
    }

    /// Total invocations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of invocations with outcome `o` (0 if nothing recorded).
    pub fn fraction(&self, o: Outcome) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.counts[o.index()] as f64 / self.total() as f64
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &OutcomeCounts) {
        for i in 0..5 {
            self.counts[i] += other.counts[i];
        }
    }
}

/// Averages for one (environment, scheme) cell.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CellResult {
    /// Mean core frequency relative to `NoVar`'s nominal.
    pub freq_rel: f64,
    /// Mean performance relative to `NoVar`.
    pub perf_rel: f64,
    /// Mean processor power (core + L1 + L2 [+ checker when present]), W.
    pub power_w: f64,
    /// Controller outcomes (dynamic schemes only).
    pub outcomes: OutcomeCounts,
}

/// A full campaign result.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// `Baseline` reference (no error tolerance: clocked at `fvar`).
    pub baseline: CellResult,
    /// `NoVar` reference (no variation: nominal frequency).
    pub novar: CellResult,
    /// One cell per requested (environment, scheme) pair, in request order.
    pub cells: Vec<(Environment, Scheme, CellResult)>,
}

impl CampaignResult {
    /// Looks up a cell.
    pub fn cell(&self, env: Environment, scheme: Scheme) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|(e, s, _)| *e == env && *s == scheme)
            .map(|(_, _, c)| c)
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// System configuration.
    pub config: EvalConfig,
    /// Number of chips in the Monte Carlo population (the paper uses 100).
    pub chips: usize,
    /// Base RNG seed for the population.
    pub base_seed: u64,
    /// Instructions per phase measurement in the profiler.
    pub profile_budget: u64,
    /// Workloads to run (defaults to all 16).
    pub workloads: Vec<Workload>,
    /// Fuzzy-controller training budget.
    pub training: TrainingBudget,
    /// Cores exercised per chip (the paper runs each app on all 4; 1 is
    /// statistically close at a quarter of the cost).
    pub cores_per_chip: usize,
    /// Worker threads for the chip-parallel Monte Carlo (0 = all cores).
    pub threads: usize,
}

impl Campaign {
    /// A campaign with the paper's protocol but a configurable chip count.
    pub fn new(chips: usize) -> Self {
        Self {
            config: EvalConfig::micro08(),
            chips,
            base_seed: 2008,
            profile_budget: 8_000,
            workloads: Workload::all(),
            training: TrainingBudget::default(),
            cores_per_chip: 1,
            threads: 0,
        }
    }

    /// Runs the campaign over the given environments and schemes.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError`] if a reference or statically provisioned
    /// operating point turns out to be thermally infeasible on some chip.
    ///
    /// # Panics
    ///
    /// Panics if `chips`, `workloads` or `cores_per_chip` is empty/zero.
    pub fn run(
        &self,
        envs: &[Environment],
        schemes: &[Scheme],
    ) -> Result<CampaignResult, CampaignError> {
        self.run_traced(envs, schemes, Tracer::noop())
    }

    /// [`Campaign::run`] with tracing: emits a `campaign-start` event,
    /// per-chip `chip-start` markers plus tester/training/decision events,
    /// a live `campaign.chips_done` counter (recorded by workers as each
    /// chip completes, for progress decorators), and span timings into
    /// `tracer`.
    ///
    /// Workers record into per-chip buffers that are replayed into the
    /// caller's sink in chip-index order after the parallel sweep joins,
    /// so the event stream is identical for any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError`] if a reference or statically provisioned
    /// operating point turns out to be thermally infeasible on some chip.
    ///
    /// # Panics
    ///
    /// Panics if `chips`, `workloads` or `cores_per_chip` is empty/zero.
    pub fn run_traced(
        &self,
        envs: &[Environment],
        schemes: &[Scheme],
        tracer: Tracer<'_>,
    ) -> Result<CampaignResult, CampaignError> {
        assert!(self.chips > 0, "need at least one chip");
        assert!(!self.workloads.is_empty(), "need at least one workload");
        assert!(self.cores_per_chip >= 1, "need at least one core");

        let _campaign_span = tracer.span("campaign");
        let factory = ChipFactory::new(self.config.clone());
        let profiles: Vec<WorkloadProfile> = self
            .workloads
            .iter()
            .map(|w| profile_workload(w, self.profile_budget, self.base_seed))
            .collect();

        // --- NoVar reference ---
        let novar_chip = factory.no_variation();
        let novar_perf: Vec<f64> = profiles
            .iter()
            .map(|p| self.novar_perf(p))
            .collect();
        let novar = self.reference_cell(
            novar_chip.core(0),
            GHz::raw(self.config.f_nominal_ghz),
            &profiles,
            &novar_perf,
            tracer,
        )?;

        // --- population cells ---
        // Chips are independent Monte Carlo samples, so they run in
        // parallel; per-chip results are collected by index and merged in a
        // fixed order, keeping the result bit-identical to a serial run.
        let pairs: Vec<(Environment, Scheme)> = envs
            .iter()
            .flat_map(|e| schemes.iter().map(move |s| (*e, *s)))
            .collect();
        tracer.event(|| Event::CampaignStart {
            chips: self.chips as u64,
            workloads: self.workloads.len() as u64,
            cells: pairs.len() as u64,
        });
        let threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(self.chips)
        } else {
            self.threads.min(self.chips)
        };
        type ChipSlot = Option<Result<(CellResult, Vec<CellResult>), CampaignError>>;
        let mut per_chip: Vec<ChipSlot> = vec![None; self.chips];
        // Workers trace into per-chip buffers so the merged stream does not
        // depend on thread interleaving; replayed in chip order below.
        let buffers: Vec<BufferSink> = (0..self.chips).map(|_| BufferSink::new()).collect();
        // Chips are claimed one at a time off a shared atomic counter, so a
        // slow chip never idles the other workers (static chunking would).
        // Claim order affects scheduling only: each result lands in its
        // chip's slot and traces replay in chip order below, keeping the
        // output bit-identical to a serial run.
        let next_chip = std::sync::atomic::AtomicUsize::new(0);
        type ChipOutcome = Result<(CellResult, Vec<CellResult>), CampaignError>;
        let worker_results: Vec<std::thread::Result<Vec<(usize, ChipOutcome)>>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let factory = &factory;
                        let profiles = &profiles;
                        let novar_perf = &novar_perf;
                        let pairs = &pairs;
                        let buffers = &buffers;
                        let next_chip = &next_chip;
                        scope.spawn(move || {
                            let mut done: Vec<(usize, ChipOutcome)> = Vec::new();
                            loop {
                                let chip_idx =
                                    next_chip.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                if chip_idx >= self.chips {
                                    break;
                                }
                                let chip_tracer = if tracer.enabled() {
                                    Tracer::new(&buffers[chip_idx])
                                } else {
                                    Tracer::noop()
                                };
                                done.push((
                                    chip_idx,
                                    self.run_one_chip(
                                        factory, chip_idx, pairs, profiles, novar_perf,
                                        chip_tracer,
                                    ),
                                ));
                                // Live progress signal on the *outer* sink
                                // (per-chip events stay buffered until the
                                // join): counter adds commute, so the
                                // end-of-run snapshot is independent of
                                // worker interleaving and the golden event
                                // lines are untouched.
                                tracer.count("campaign.chips_done");
                            }
                            done
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join()).collect()
            });
        for joined in worker_results {
            let done = joined.map_err(|_| CampaignError::Internal("worker thread panicked"))?;
            for (chip_idx, outcome) in done {
                per_chip[chip_idx] = Some(outcome);
            }
        }
        for buffer in buffers {
            tracer.replay(buffer.into_records());
        }

        let mut baseline = CellResult::default();
        let mut cells: Vec<(Environment, Scheme, CellResult)> = pairs
            .iter()
            .map(|(e, s)| (*e, *s, CellResult::default()))
            .collect();
        for entry in per_chip {
            let (chip_baseline, chip_cells) =
                entry.ok_or(CampaignError::Internal("chip slot left uncomputed"))??;
            accumulate(&mut baseline, &chip_baseline);
            for ((_, _, acc), cell) in cells.iter_mut().zip(chip_cells) {
                accumulate(acc, &cell);
            }
        }
        let samples = self.chips * self.cores_per_chip;
        normalize(&mut baseline, samples);
        for (_, _, c) in cells.iter_mut() {
            normalize(c, samples);
        }
        Ok(CampaignResult {
            baseline,
            novar,
            cells,
        })
    }

    /// All measurements for one chip: the baseline reference plus one cell
    /// per requested (environment, scheme) pair, summed over its cores.
    fn run_one_chip(
        &self,
        factory: &ChipFactory,
        chip_idx: usize,
        pairs: &[(Environment, Scheme)],
        profiles: &[WorkloadProfile],
        novar_perf: &[f64],
        tracer: Tracer<'_>,
    ) -> Result<(CellResult, Vec<CellResult>), CampaignError> {
        let _chip_span = tracer.span("chip");
        tracer.event(|| Event::ChipStart {
            chip: chip_idx as u64,
        });
        let chip = factory.chip_traced(
            self.base_seed.wrapping_add(chip_idx as u64 * 0x9E37),
            tracer,
        );
        let mut baseline = CellResult::default();
        let mut cells = vec![CellResult::default(); pairs.len()];
        for core_idx in 0..self.cores_per_chip {
            let core = chip.core(core_idx);

            // Baseline: clocked at fvar, error free.
            let fvar = core.fvar_nominal(&self.config);
            accumulate(
                &mut baseline,
                &self.reference_cell(core, fvar, profiles, novar_perf, tracer)?,
            );

            // Adapted environments. Trained fuzzy controllers are reused
            // across this core's cells, keyed deterministically by
            // environment (ordered map: no hash-order dependence, O(log n)
            // lookup instead of the former linear scan).
            let mut fuzzy_cache: std::collections::BTreeMap<Environment, FuzzyOptimizer> =
                std::collections::BTreeMap::new();
            for ((env, scheme), acc) in pairs.iter().zip(cells.iter_mut()) {
                let exhaustive = ExhaustiveOptimizer::new();
                let optimizer: &dyn Optimizer = match scheme {
                    Scheme::FuzzyDyn => fuzzy_cache.entry(*env).or_insert_with(|| {
                        FuzzyOptimizer::train_traced(
                            &self.config,
                            &chip,
                            core_idx,
                            *env,
                            &self.training,
                            tracer,
                        )
                    }),
                    _ => &exhaustive,
                };
                let cell = match scheme {
                    Scheme::Static => {
                        self.run_static(core, *env, profiles, novar_perf, tracer)?
                    }
                    _ => self.run_dynamic(
                        core, *env, optimizer, *scheme, profiles, novar_perf, tracer,
                    ),
                };
                accumulate(acc, &cell);
            }
        }
        Ok((baseline, cells))
    }

    /// Per-workload breakdown for one (environment, scheme) pair: the mean
    /// cell of each workload over the chip population, in suite order.
    /// (Figures 10–12 report suite averages; this exposes the per-app
    /// detail an artifact evaluation wants.)
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError`] if a statically provisioned operating
    /// point turns out to be thermally infeasible on some chip.
    pub fn run_per_workload(
        &self,
        env: Environment,
        scheme: Scheme,
    ) -> Result<Vec<(&'static str, CellResult)>, CampaignError> {
        assert!(self.chips > 0, "need at least one chip");
        let factory = ChipFactory::new(self.config.clone());
        let profiles: Vec<WorkloadProfile> = self
            .workloads
            .iter()
            .map(|w| profile_workload(w, self.profile_budget, self.base_seed))
            .collect();
        let mut out: Vec<(&'static str, CellResult)> = self
            .workloads
            .iter()
            .map(|w| (w.name, CellResult::default()))
            .collect();
        for chip_idx in 0..self.chips {
            let chip = factory.chip(self.base_seed.wrapping_add(chip_idx as u64 * 0x9E37));
            for core_idx in 0..self.cores_per_chip {
                let core = chip.core(core_idx);
                let fuzzy = matches!(scheme, Scheme::FuzzyDyn).then(|| {
                    FuzzyOptimizer::train(&self.config, &chip, core_idx, env, &self.training)
                });
                let exhaustive = ExhaustiveOptimizer::new();
                for (profile, (_, acc)) in profiles.iter().zip(out.iter_mut()) {
                    let single = std::slice::from_ref(profile);
                    let ref_perf = [self.novar_perf(profile)];
                    let cell = match (scheme, fuzzy.as_ref()) {
                        (Scheme::Static, _) => {
                            self.run_static(core, env, single, &ref_perf, Tracer::noop())?
                        }
                        (Scheme::FuzzyDyn, Some(fuzzy)) => self.run_dynamic(
                            core, env, fuzzy, scheme, single, &ref_perf, Tracer::noop(),
                        ),
                        _ => self.run_dynamic(
                            core, env, &exhaustive, scheme, single, &ref_perf, Tracer::noop(),
                        ),
                    };
                    accumulate(acc, &cell);
                }
            }
        }
        let samples = self.chips * self.cores_per_chip;
        for (_, c) in out.iter_mut() {
            normalize(c, samples);
        }
        Ok(out)
    }

    /// NoVar performance of one workload (nominal f, no errors), weighted
    /// over phases.
    fn novar_perf(&self, profile: &WorkloadProfile) -> f64 {
        profile.weighted(|ph| {
            PerfModel::new(
                ph.cpi_comp(QueueSize::Full),
                ph.mr,
                ph.mp_ns,
                profile.rp_cycles,
            )
            .perf(self.config.f_nominal_ghz, 0.0)
        })
    }

    /// A non-adaptive reference cell (Baseline or NoVar): fixed frequency,
    /// nominal voltages, no checker, no errors.
    fn reference_cell(
        &self,
        core: &CoreModel,
        f: GHz,
        profiles: &[WorkloadProfile],
        novar_perf: &[f64],
        tracer: Tracer<'_>,
    ) -> Result<CellResult, CampaignError> {
        let settings = vec![(1.0, 0.0); N_SUBSYSTEMS];
        let mut cell = CellResult::default();
        for (profile, &ref_perf) in profiles.iter().zip(novar_perf) {
            for ph in &profile.phases {
                let weight = ph.weight / profiles.len() as f64;
                let eval = core
                    .evaluate(
                        &self.config,
                        self.config.th_c,
                        f,
                        &settings,
                        &ph.activity.alpha_f,
                        &ph.activity.rho,
                        &VariantSelection::default(),
                    )
                    .map_err(|source| {
                        let context = "reference machine at nominal voltages";
                        tracer.event(|| Event::Infeasible {
                            context,
                            subsystem: source.subsystem.to_string(),
                        });
                        CampaignError::Infeasible { context, source }
                    })?;
                let perf = PerfModel::new(
                    ph.cpi_comp(QueueSize::Full),
                    ph.mr,
                    ph.mp_ns,
                    profile.rp_cycles,
                )
                .perf(f.get(), 0.0);
                cell.freq_rel += weight * f.get() / self.config.f_nominal_ghz;
                cell.perf_rel += weight * perf / ref_perf;
                // No checker in the reference machines.
                cell.power_w += weight * (eval.total_power_w - self.config.checker_w);
            }
        }
        Ok(cell)
    }

    /// Dynamic adaptation: the controller runs at every phase.
    fn run_dynamic(
        &self,
        core: &CoreModel,
        env: Environment,
        optimizer: &dyn Optimizer,
        scheme: Scheme,
        profiles: &[WorkloadProfile],
        novar_perf: &[f64],
        tracer: Tracer<'_>,
    ) -> CellResult {
        let timeline = AdaptationTimeline::micro08();
        let mut cell = CellResult::default();
        for (profile, &ref_perf) in profiles.iter().zip(novar_perf) {
            let class = profile.class;
            for ph in &profile.phases {
                let weight = ph.weight / profiles.len() as f64;
                let ctx = DecisionContext {
                    scheme: scheme.trace_label(),
                    workload: profile.name,
                    phase: ph.index as u64,
                };
                let d = decide_phase_traced(
                    &self.config,
                    core,
                    optimizer,
                    env,
                    ph,
                    class,
                    profile.rp_cycles,
                    self.config.th_c,
                    &ctx,
                    tracer,
                );
                let overhead = timeline.overhead_fraction(d.retune_steps);
                cell.freq_rel += weight * d.f_ghz / self.config.f_nominal_ghz;
                cell.perf_rel += weight * d.perf_bips * (1.0 - overhead) / ref_perf;
                cell.power_w += weight * self.billed_power(env, d.evaluation.total_power_w);
                cell.outcomes.add(d.outcome);
            }
        }
        // Metrics only (never golden event lines): solver cache counters.
        optimizer.flush_metrics(tracer);
        cell
    }

    /// Static scheme: one conservative configuration per (chip, workload),
    /// chosen for worst-case activity, then held for the whole run.
    fn run_static(
        &self,
        core: &CoreModel,
        env: Environment,
        profiles: &[WorkloadProfile],
        novar_perf: &[f64],
        tracer: Tracer<'_>,
    ) -> Result<CellResult, CampaignError> {
        let exhaustive = ExhaustiveOptimizer::new();
        let mut cell = CellResult::default();
        for (profile, &ref_perf) in profiles.iter().zip(novar_perf) {
            let worst = synthetic_worst_phase(profile);
            let ctx = DecisionContext {
                scheme: Scheme::Static.trace_label(),
                workload: profile.name,
                phase: worst.index as u64,
            };
            // A static configuration cannot react to conditions, so it is
            // provisioned for the hottest heat sink the spec allows
            // (TH_MAX), not the currently sensed one.
            let d = decide_phase_traced(
                &self.config,
                core,
                &exhaustive,
                env,
                &worst,
                profile.class,
                profile.rp_cycles,
                self.config.constraints.th_max_c,
                &ctx,
                tracer,
            );
            // Hold (f, settings, variants) fixed; per-phase consequences.
            for ph in &profile.phases {
                let weight = ph.weight / profiles.len() as f64;
                let eval = core
                    .evaluate(
                        &self.config,
                        self.config.th_c,
                        GHz::raw(d.f_ghz),
                        &d.settings,
                        &ph.activity.alpha_f,
                        &ph.activity.rho,
                        &d.variants,
                    )
                    .map_err(|source| {
                        let context = "worst-case-provisioned static configuration";
                        tracer.event(|| Event::Infeasible {
                            context,
                            subsystem: source.subsystem.to_string(),
                        });
                        CampaignError::Infeasible { context, source }
                    })?;
                let queue = static_queue_size(profile, &d);
                let perf = PerfModel::new(
                    ph.cpi_comp(queue),
                    ph.mr,
                    ph.mp_ns,
                    profile.rp_cycles,
                )
                .perf(d.f_ghz, eval.pe_per_instruction.clamp(0.0, 1.0));
                cell.freq_rel += weight * d.f_ghz / self.config.f_nominal_ghz;
                cell.perf_rel += weight * perf / ref_perf;
                cell.power_w += weight * self.billed_power(env, eval.total_power_w);
            }
        }
        // Metrics only (never golden event lines): solver cache counters.
        exhaustive.flush_metrics(tracer);
        Ok(cell)
    }

    /// Checker power is only billed when the environment has a checker.
    fn billed_power(&self, env: Environment, total_w: f64) -> f64 {
        if env.checker {
            total_w
        } else {
            total_w - self.config.checker_w
        }
    }
}

/// The queue sizing a static decision implies for this workload class.
fn static_queue_size(
    profile: &WorkloadProfile,
    d: &crate::controller::PhaseDecision,
) -> QueueSize {
    use eval_core::QueueChoice;
    use eval_uarch::WorkloadClass;
    match (profile.class, d.variants.int_queue, d.variants.fp_queue) {
        (WorkloadClass::Int, QueueChoice::Small, _) => QueueSize::ThreeQuarters,
        (WorkloadClass::Fp, _, QueueChoice::Small) => QueueSize::ThreeQuarters,
        _ => QueueSize::Full,
    }
}

/// The conservative aggregate a static configuration is provisioned for:
/// worst-case activity/exercise rates and instruction-weighted CPI/miss
/// behaviour.
fn synthetic_worst_phase(profile: &WorkloadProfile) -> PhaseProfile {
    let worst: ActivityVector = profile.worst_case_activity();
    PhaseProfile {
        index: usize::MAX,
        weight: 1.0,
        cpi_comp_full: profile.weighted(|p| p.cpi_comp_full),
        cpi_comp_small: profile.weighted(|p| p.cpi_comp_small),
        mr: profile.weighted(|p| p.mr),
        mp_ns: profile.weighted(|p| p.mp_ns),
        activity: worst,
    }
}

fn accumulate(acc: &mut CellResult, cell: &CellResult) {
    acc.freq_rel += cell.freq_rel;
    acc.perf_rel += cell.perf_rel;
    acc.power_w += cell.power_w;
    acc.outcomes.merge(&cell.outcomes);
}

fn normalize(cell: &mut CellResult, samples: usize) {
    let n = samples as f64;
    cell.freq_rel /= n;
    cell.perf_rel /= n;
    cell.power_w /= n;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign() -> Campaign {
        let mut c = Campaign::new(2);
        c.profile_budget = 4_000;
        c.workloads = vec![
            Workload::by_name("swim").unwrap(),
            Workload::by_name("crafty").unwrap(),
        ];
        c.training = TrainingBudget {
            examples: 60,
            ..TrainingBudget::default()
        };
        c
    }

    #[test]
    fn baseline_is_slower_than_novar_and_ts_beats_baseline() {
        let c = tiny_campaign();
        let r = c.run(&[Environment::TS], &[Scheme::ExhDyn]).expect("campaign runs");
        assert!(r.baseline.freq_rel < 0.95, "baseline {}", r.baseline.freq_rel);
        assert!((r.novar.freq_rel - 1.0).abs() < 1e-9);
        let ts = r.cell(Environment::TS, Scheme::ExhDyn).unwrap();
        assert!(
            ts.freq_rel > r.baseline.freq_rel,
            "TS {} vs baseline {}",
            ts.freq_rel,
            r.baseline.freq_rel
        );
    }

    #[test]
    fn asv_improves_on_ts_and_power_stays_within_pmax() {
        let c = tiny_campaign();
        let r = c.run(
            &[Environment::TS, Environment::TS_ASV],
            &[Scheme::ExhDyn],
        ).expect("campaign runs");
        let ts = r.cell(Environment::TS, Scheme::ExhDyn).unwrap();
        let asv = r.cell(Environment::TS_ASV, Scheme::ExhDyn).unwrap();
        assert!(asv.freq_rel > ts.freq_rel);
        assert!(asv.power_w <= c.config.constraints.p_max_w + 1e-6);
        assert!(asv.power_w > ts.power_w);
    }

    #[test]
    fn static_is_no_faster_than_dynamic() {
        let c = tiny_campaign();
        let r = c.run(&[Environment::TS_ASV], &[Scheme::Static, Scheme::ExhDyn]).expect("campaign runs");
        let st = r.cell(Environment::TS_ASV, Scheme::Static).unwrap();
        let dy = r.cell(Environment::TS_ASV, Scheme::ExhDyn).unwrap();
        assert!(
            dy.freq_rel >= st.freq_rel - 0.02,
            "dyn {} vs static {}",
            dy.freq_rel,
            st.freq_rel
        );
    }

    #[test]
    fn traced_campaign_matches_untraced_and_buffers_deterministically() {
        use eval_trace::Collector;
        let c = tiny_campaign();
        let envs = [Environment::TS];
        let schemes = [Scheme::Static, Scheme::ExhDyn];
        let plain = c.run(&envs, &schemes).expect("campaign runs");

        let sink_a = Collector::new();
        let traced = c
            .run_traced(&envs, &schemes, Tracer::new(&sink_a))
            .expect("traced campaign runs");
        assert_eq!(plain, traced, "tracing must not perturb results");

        // Start event, per-chip tester events, and one decision per
        // (chip, scheme, workload[, phase]) cell all present.
        let events = sink_a.events();
        assert!(matches!(events[0], Event::CampaignStart { chips: 2, .. }));
        let decisions = events
            .iter()
            .filter(|e| matches!(e, Event::Decision(_)))
            .count();
        // Static: 1 decision/workload/chip; ExhDyn: 1/phase/workload/chip.
        assert!(decisions >= 2 * (2 + 2), "decisions {decisions}");
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::TesterMeasurement { .. })));

        // Same campaign on one thread: byte-identical event payloads.
        let mut serial = c.clone();
        serial.threads = 1;
        let sink_b = Collector::new();
        serial
            .run_traced(&envs, &schemes, Tracer::new(&sink_b))
            .expect("serial traced campaign runs");
        assert_eq!(sink_a.event_lines(), sink_b.event_lines());

        // Buffered replay preserves span records too.
        assert!(sink_a
            .spans()
            .keys()
            .any(|path| path.starts_with("chip")));
    }

    #[test]
    fn dynamic_cells_record_outcomes() {
        let c = tiny_campaign();
        let r = c.run(&[Environment::TS], &[Scheme::ExhDyn]).expect("campaign runs");
        let ts = r.cell(Environment::TS, Scheme::ExhDyn).unwrap();
        assert!(ts.outcomes.total() > 0);
    }
}
