//! The experiment harness behind Figures 10–13: environments x adaptation
//! schemes over a chip population and the 16-workload suite.

use eval_trace::{names, BufferSink, Event, Tracer};
use eval_units::GHz;

use eval_core::{
    ChipFactory, CoreModel, Environment, EvalConfig, InfeasibleConfig, PerfModel,
    VariantSelection, N_SUBSYSTEMS,
};
use eval_uarch::profile::{PhaseProfile, WorkloadProfile};
use eval_uarch::{profile_workload, ActivityVector, QueueSize, Workload};

use crate::checkpoint::{
    self, capture_metrics, CheckpointError, CheckpointOptions, CheckpointWriter, ChipRecord,
    RecordedOutcome,
};
use crate::controller::{decide_phase_traced, AdaptationTimeline, DecisionContext};
use crate::exhaustive::ExhaustiveOptimizer;
use crate::fuzzy_ctl::{FuzzyOptimizer, TrainingBudget};
use crate::optimizer::Optimizer;
use crate::retune::Outcome;

/// How configurations are chosen (the three bars per environment in
/// Figures 10–12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// One conservative configuration per chip, provisioned for worst-case
    /// activity; never re-tuned at run time.
    Static,
    /// Per-phase adaptation driven by the trained fuzzy controllers.
    FuzzyDyn,
    /// Per-phase adaptation driven by the exhaustive oracle.
    ExhDyn,
}

impl Scheme {
    /// All schemes in plot order.
    pub const ALL: [Scheme; 3] = [Scheme::Static, Scheme::FuzzyDyn, Scheme::ExhDyn];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Static => "Static",
            Scheme::FuzzyDyn => "Fuzzy-Dyn",
            Scheme::ExhDyn => "Exh-Dyn",
        }
    }

    /// Trace label (matches the per-scheme decision counter names).
    pub fn trace_label(&self) -> &'static str {
        match self {
            Scheme::Static => "static",
            Scheme::FuzzyDyn => "fuzzy",
            Scheme::ExhDyn => "exhaustive",
        }
    }
}

/// Error from a campaign run.
///
/// The reference machines and the statically provisioned configurations
/// are *supposed* to be feasible at every chip and phase; if one is not,
/// the campaign surfaces the divergence instead of panicking so batch
/// drivers (and the test harness) can report which configuration failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// A fixed (non-adaptive) operating point hit thermal runaway.
    Infeasible {
        /// Which fixed configuration was being evaluated.
        context: &'static str,
        /// The underlying per-subsystem divergence.
        source: InfeasibleConfig,
    },
    /// A structural invariant of the parallel chip sweep was violated.
    Internal(&'static str),
    /// The checkpoint sidecar could not be written, read, or trusted.
    Checkpoint(CheckpointError),
    /// Every chip in the population was quarantined; there is nothing to
    /// merge into a result.
    AllChipsFailed {
        /// The first quarantined chip's rendered error.
        first: String,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Infeasible { context, source } => {
                write!(f, "{context}: {source}")
            }
            CampaignError::Internal(what) => write!(f, "internal campaign error: {what}"),
            CampaignError::Checkpoint(source) => write!(f, "{source}"),
            CampaignError::AllChipsFailed { first } => {
                write!(f, "every chip failed; first error: {first}")
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Infeasible { source, .. } => Some(source),
            CampaignError::Checkpoint(source) => Some(source),
            CampaignError::Internal(_) | CampaignError::AllChipsFailed { .. } => None,
        }
    }
}

/// What happened to one chip of the Monte Carlo sweep.
///
/// A chip that diverges no longer aborts the campaign: it is quarantined
/// as [`ChipOutcome::Failed`], excluded from the merged averages, and
/// reported through [`CampaignResult::chips_failed`] plus the
/// `campaign.chips_failed` counter.
#[derive(Debug, Clone, PartialEq)]
pub enum ChipOutcome {
    /// Every cell of the chip evaluated successfully.
    Completed {
        /// The chip's baseline reference cell.
        baseline: CellResult,
        /// One cell per requested (environment, scheme) pair.
        cells: Vec<CellResult>,
    },
    /// The chip diverged and is quarantined from the merge.
    Failed {
        /// What went wrong on this chip.
        error: CampaignError,
    },
}

/// One quarantined chip, as reported by [`CampaignResult::chips_failed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipFailure {
    /// The chip's index in the population.
    pub chip: usize,
    /// The rendered [`CampaignError`] that quarantined it.
    pub error: String,
}

/// Outcome histogram over controller invocations (Figure 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeCounts {
    counts: [u64; 5],
}

impl OutcomeCounts {
    /// Records one outcome.
    pub fn add(&mut self, o: Outcome) {
        self.counts[o.index()] += 1;
    }

    /// Total invocations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of invocations with outcome `o` (0 if nothing recorded).
    pub fn fraction(&self, o: Outcome) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.counts[o.index()] as f64 / self.total() as f64
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &OutcomeCounts) {
        for i in 0..5 {
            self.counts[i] += other.counts[i];
        }
    }

    /// The raw histogram, in [`Outcome`] index order (checkpoint
    /// serialization).
    pub fn as_array(&self) -> [u64; 5] {
        self.counts
    }

    /// Rebuilds a histogram from [`OutcomeCounts::as_array`].
    pub fn from_array(counts: [u64; 5]) -> Self {
        Self { counts }
    }
}

/// Averages for one (environment, scheme) cell.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CellResult {
    /// Mean core frequency relative to `NoVar`'s nominal.
    pub freq_rel: f64,
    /// Mean performance relative to `NoVar`.
    pub perf_rel: f64,
    /// Mean processor power (core + L1 + L2 [+ checker when present]), W.
    pub power_w: f64,
    /// Controller outcomes (dynamic schemes only).
    pub outcomes: OutcomeCounts,
}

/// A full campaign result.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// `Baseline` reference (no error tolerance: clocked at `fvar`).
    pub baseline: CellResult,
    /// `NoVar` reference (no variation: nominal frequency).
    pub novar: CellResult,
    /// One cell per requested (environment, scheme) pair, in request order.
    pub cells: Vec<(Environment, Scheme, CellResult)>,
    /// Chips quarantined by per-chip faults, in chip order (empty on a
    /// clean run). Quarantined chips are excluded from the averages
    /// above, which normalize by the number of *completed* chips.
    pub chips_failed: Vec<ChipFailure>,
}

impl CampaignResult {
    /// Looks up a cell.
    pub fn cell(&self, env: Environment, scheme: Scheme) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|(e, s, _)| *e == env && *s == scheme)
            .map(|(_, _, c)| c)
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// System configuration.
    pub config: EvalConfig,
    /// Number of chips in the Monte Carlo population (the paper uses 100).
    pub chips: usize,
    /// Base RNG seed for the population.
    pub base_seed: u64,
    /// Instructions per phase measurement in the profiler.
    pub profile_budget: u64,
    /// Workloads to run (defaults to all 16).
    pub workloads: Vec<Workload>,
    /// Fuzzy-controller training budget.
    pub training: TrainingBudget,
    /// Cores exercised per chip (the paper runs each app on all 4; 1 is
    /// statistically close at a quarter of the cost).
    pub cores_per_chip: usize,
    /// Worker threads for the chip-parallel Monte Carlo (0 = all cores).
    pub threads: usize,
    /// Fault-injection hook for crash/quarantine tests: the chip at this
    /// index fails immediately (before emitting any trace output) instead
    /// of running. Execution-only — excluded from the checkpoint
    /// fingerprint, like [`Campaign::threads`].
    pub fail_chip: Option<usize>,
}

impl Campaign {
    /// A campaign with the paper's protocol but a configurable chip count.
    pub fn new(chips: usize) -> Self {
        Self {
            config: EvalConfig::micro08(),
            chips,
            base_seed: 2008,
            profile_budget: 8_000,
            workloads: Workload::all(),
            training: TrainingBudget::default(),
            cores_per_chip: 1,
            threads: 0,
            fail_chip: None,
        }
    }

    /// The RNG stream seed for one chip of the population (recorded in
    /// checkpoint records and verified on resume).
    pub fn chip_seed(&self, chip_idx: usize) -> u64 {
        self.base_seed.wrapping_add(chip_idx as u64 * 0x9E37)
    }

    /// Runs the campaign over the given environments and schemes.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError`] if a reference or statically provisioned
    /// operating point turns out to be thermally infeasible on some chip.
    ///
    /// # Panics
    ///
    /// Panics if `chips`, `workloads` or `cores_per_chip` is empty/zero.
    pub fn run(
        &self,
        envs: &[Environment],
        schemes: &[Scheme],
    ) -> Result<CampaignResult, CampaignError> {
        self.run_traced(envs, schemes, Tracer::noop())
    }

    /// [`Campaign::run`] with tracing: emits a `campaign-start` event,
    /// per-chip `chip-start` markers plus tester/training/decision events,
    /// a live `campaign.chips_done` counter (recorded by workers as each
    /// chip completes, for progress decorators), and span timings into
    /// `tracer`.
    ///
    /// Workers record into per-chip buffers that are replayed into the
    /// caller's sink *incrementally, in chip-index order*: as soon as the
    /// commit frontier reaches a finished chip it is replayed (and the
    /// sink flushed), so a streaming sink grows one complete chip at a
    /// time while the event stream stays identical for any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError`] if a reference operating point turns out
    /// to be thermally infeasible, or if *every* chip was quarantined.
    /// Individual chip faults no longer abort the sweep — see
    /// [`ChipOutcome`].
    ///
    /// # Panics
    ///
    /// Panics if `chips`, `workloads` or `cores_per_chip` is empty/zero.
    pub fn run_traced(
        &self,
        envs: &[Environment],
        schemes: &[Scheme],
        tracer: Tracer<'_>,
    ) -> Result<CampaignResult, CampaignError> {
        self.run_core(envs, schemes, tracer, None)
    }

    /// [`Campaign::run_traced`] with chip-level checkpointing: after each
    /// chip's trace records are committed, a compact record of its
    /// results and metric contributions is appended (and flushed) to the
    /// sidecar at [`CheckpointOptions::path`]. With
    /// [`CheckpointOptions::resume`], a sidecar left by an interrupted
    /// run is verified against this campaign's fingerprint, its completed
    /// chips are skipped, and the merged [`CampaignResult`] is
    /// bit-identical to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// Everything [`Campaign::run_traced`] returns, plus
    /// [`CampaignError::Checkpoint`] for sidecar I/O failures, corruption
    /// before the final line, or a fingerprint mismatch on resume.
    ///
    /// # Panics
    ///
    /// Panics if `chips`, `workloads` or `cores_per_chip` is empty/zero.
    pub fn run_checkpointed(
        &self,
        envs: &[Environment],
        schemes: &[Scheme],
        tracer: Tracer<'_>,
        opts: &CheckpointOptions,
    ) -> Result<CampaignResult, CampaignError> {
        self.run_core(envs, schemes, tracer, Some(opts))
    }

    fn run_core(
        &self,
        envs: &[Environment],
        schemes: &[Scheme],
        tracer: Tracer<'_>,
        ckpt: Option<&CheckpointOptions>,
    ) -> Result<CampaignResult, CampaignError> {
        assert!(self.chips > 0, "need at least one chip");
        assert!(!self.workloads.is_empty(), "need at least one workload");
        assert!(self.cores_per_chip >= 1, "need at least one core");

        let pairs: Vec<(Environment, Scheme)> = envs
            .iter()
            .flat_map(|e| schemes.iter().map(move |s| (*e, *s)))
            .collect();

        // --- checkpoint reconciliation ---
        // Before any trace output, so a refused resume leaves the sink
        // untouched. On resume the sidecar is rewritten from the loaded
        // records: this drops a torn final line and keeps every append
        // below landing on a clean line boundary.
        let resumed = self.load_resumable(envs, schemes, pairs.len(), ckpt)?;
        let writer = match ckpt {
            Some(opts) => {
                let fp = checkpoint::fingerprint(self, envs, schemes);
                let mut w = CheckpointWriter::create(&opts.path, fp, self.chips)
                    .map_err(CampaignError::Checkpoint)?;
                for rec in &resumed {
                    w.append(rec).map_err(CampaignError::Checkpoint)?;
                }
                Some(w)
            }
            None => None,
        };
        let start_at = resumed.len();

        let _campaign_span = tracer.span("campaign");
        let factory = ChipFactory::new(self.config.clone());
        let profiles: Vec<WorkloadProfile> = self
            .workloads
            .iter()
            .map(|w| profile_workload(w, self.profile_budget, self.base_seed))
            .collect();

        // --- NoVar reference ---
        let novar_chip = factory.no_variation();
        let novar_perf: Vec<f64> = profiles
            .iter()
            .map(|p| self.novar_perf(p))
            .collect();
        let novar = self.reference_cell(
            novar_chip.core(0),
            GHz::raw(self.config.f_nominal_ghz),
            &profiles,
            &novar_perf,
            tracer,
        )?;

        // --- population cells ---
        // Chips are independent Monte Carlo samples, so they run in
        // parallel; per-chip results are collected by index and merged in a
        // fixed order, keeping the result bit-identical to a serial run.
        if start_at == 0 {
            // On resume the campaign-start event (and the resumed chips'
            // event lines) already live in the on-disk trace.
            tracer.event(|| Event::CampaignStart {
                chips: self.chips as u64,
                workloads: self.workloads.len() as u64,
                cells: pairs.len() as u64,
            });
        }
        if ckpt.is_some() {
            tracer.gauge(names::CAMPAIGN_CHIPS_TOTAL, self.chips as f64);
        }
        if start_at > 0 {
            tracer.count_n(names::CAMPAIGN_CHIPS_RESUMED, start_at as u64);
            tracer.count_n(names::CAMPAIGN_CHIPS_DONE, start_at as u64);
        }
        // Replaying each resumed chip's captured metrics (counters,
        // gauges, per-name-ordered observations) rebuilds the registry
        // bit-identically to having run those chips in this process.
        for rec in &resumed {
            tracer.replay(rec.metrics.to_updates());
            if matches!(rec.outcome, RecordedOutcome::Failed { .. }) {
                tracer.count(names::CAMPAIGN_CHIPS_FAILED);
            }
        }

        let threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(self.chips)
        } else {
            self.threads.min(self.chips)
        };
        // Workers trace into per-chip buffers so the merged stream does not
        // depend on thread interleaving; committed in chip order below.
        let buffers: Vec<BufferSink> = (0..self.chips).map(|_| BufferSink::new()).collect();
        // Chips are claimed one at a time off a shared atomic counter, so a
        // slow chip never idles the other workers (static chunking would).
        // Claim order affects scheduling only: each result lands in its
        // chip's slot and commits in chip order, keeping the output
        // bit-identical to a serial run.
        let next_chip = std::sync::atomic::AtomicUsize::new(start_at);
        let commit = std::sync::Mutex::new(CommitState {
            frontier: start_at,
            slots: prefill_slots(self.chips, resumed),
            writer,
            ckpt_error: None,
        });
        let worker_panicked: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let factory = &factory;
                    let profiles = &profiles;
                    let novar_perf = &novar_perf;
                    let pairs = &pairs;
                    let buffers = &buffers;
                    let next_chip = &next_chip;
                    let commit = &commit;
                    scope.spawn(move || loop {
                        let chip_idx =
                            next_chip.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if chip_idx >= self.chips {
                            break;
                        }
                        let chip_tracer = if tracer.enabled() {
                            Tracer::new(&buffers[chip_idx])
                        } else {
                            Tracer::noop()
                        };
                        let outcome = self.run_one_chip(
                            factory, chip_idx, pairs, profiles, novar_perf, chip_tracer,
                        );
                        // Commit under one lock: store the slot, then
                        // advance the frontier over every contiguously
                        // finished chip — replaying its buffer (which
                        // flushes a streaming sink) *before* appending its
                        // checkpoint record, so the on-disk trace is never
                        // behind the sidecar.
                        {
                            let mut guard =
                                commit.lock().unwrap_or_else(|e| e.into_inner());
                            guard.slots[chip_idx] = Some(CommittedChip::from(outcome));
                            guard.advance(self, buffers, tracer);
                        }
                        // Live progress signal on the *outer* sink: counter
                        // adds commute, so the end-of-run snapshot is
                        // independent of worker interleaving and the golden
                        // event lines are untouched.
                        tracer.count(names::CAMPAIGN_CHIPS_DONE);
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().is_err()).collect()
        });
        if worker_panicked.into_iter().any(|p| p) {
            return Err(CampaignError::Internal("worker thread panicked"));
        }
        let state = commit.into_inner().unwrap_or_else(|e| e.into_inner());
        if let Some(err) = state.ckpt_error {
            return Err(CampaignError::Checkpoint(err));
        }
        if state.frontier != self.chips {
            return Err(CampaignError::Internal("chips left uncommitted"));
        }

        let mut baseline = CellResult::default();
        let mut cells: Vec<(Environment, Scheme, CellResult)> = pairs
            .iter()
            .map(|(e, s)| (*e, *s, CellResult::default()))
            .collect();
        let mut chips_failed: Vec<ChipFailure> = Vec::new();
        let mut ok_chips = 0usize;
        for (chip_idx, slot) in state.slots.into_iter().enumerate() {
            match slot.ok_or(CampaignError::Internal("chip slot left uncomputed"))? {
                CommittedChip::Ok {
                    baseline: chip_baseline,
                    cells: chip_cells,
                } => {
                    accumulate(&mut baseline, &chip_baseline);
                    for ((_, _, acc), cell) in cells.iter_mut().zip(chip_cells) {
                        accumulate(acc, &cell);
                    }
                    ok_chips += 1;
                }
                CommittedChip::Failed { error } => chips_failed.push(ChipFailure {
                    chip: chip_idx,
                    error,
                }),
            }
        }
        if ok_chips == 0 {
            return Err(CampaignError::AllChipsFailed {
                first: chips_failed
                    .first()
                    .map(|f| f.error.clone())
                    .unwrap_or_default(),
            });
        }
        // Quarantined chips contribute nothing, so the averages normalize
        // by the chips that actually completed.
        let samples = ok_chips * self.cores_per_chip;
        normalize(&mut baseline, samples);
        for (_, _, c) in cells.iter_mut() {
            normalize(c, samples);
        }
        Ok(CampaignResult {
            baseline,
            novar,
            cells,
            chips_failed,
        })
    }

    /// Loads and validates the resumable prefix of the checkpoint sidecar
    /// (empty when not checkpointing, not resuming, or no usable sidecar
    /// exists).
    fn load_resumable(
        &self,
        envs: &[Environment],
        schemes: &[Scheme],
        cells_per_chip: usize,
        ckpt: Option<&CheckpointOptions>,
    ) -> Result<Vec<ChipRecord>, CampaignError> {
        let Some(opts) = ckpt.filter(|o| o.resume) else {
            return Ok(Vec::new());
        };
        let Some(loaded) = checkpoint::load(&opts.path).map_err(CampaignError::Checkpoint)?
        else {
            return Ok(Vec::new());
        };
        let expected = checkpoint::fingerprint(self, envs, schemes);
        if loaded.fingerprint != expected {
            return Err(CampaignError::Checkpoint(
                CheckpointError::FingerprintMismatch {
                    expected,
                    found: loaded.fingerprint,
                },
            ));
        }
        for (i, rec) in loaded.records.iter().enumerate() {
            // Header line is line 1, chip `i` is line `i + 2`.
            let corrupt = |message: String| {
                CampaignError::Checkpoint(CheckpointError::Corrupt {
                    line: i + 2,
                    message,
                })
            };
            if rec.seed != self.chip_seed(i) {
                return Err(corrupt(format!(
                    "chip {i} seed {} does not match the campaign's stream seed {}",
                    rec.seed,
                    self.chip_seed(i)
                )));
            }
            if let RecordedOutcome::Ok { cells, .. } = &rec.outcome {
                if cells.len() != cells_per_chip {
                    return Err(corrupt(format!(
                        "chip {i} has {} cells, campaign requests {cells_per_chip}",
                        cells.len(),
                    )));
                }
            }
        }
        Ok(loaded.records)
    }

    /// All measurements for one chip, with fault isolation: any error is
    /// quarantined into [`ChipOutcome::Failed`] so the rest of the sweep
    /// continues. The injected [`Campaign::fail_chip`] fault fires before
    /// any trace output, so a quarantined chip can leave an empty buffer.
    fn run_one_chip(
        &self,
        factory: &ChipFactory,
        chip_idx: usize,
        pairs: &[(Environment, Scheme)],
        profiles: &[WorkloadProfile],
        novar_perf: &[f64],
        tracer: Tracer<'_>,
    ) -> ChipOutcome {
        if self.fail_chip == Some(chip_idx) {
            return ChipOutcome::Failed {
                error: CampaignError::Internal("injected chip fault (fail_chip)"),
            };
        }
        match self.run_one_chip_inner(factory, chip_idx, pairs, profiles, novar_perf, tracer) {
            Ok((baseline, cells)) => ChipOutcome::Completed { baseline, cells },
            Err(error) => ChipOutcome::Failed { error },
        }
    }

    /// The baseline reference plus one cell per requested (environment,
    /// scheme) pair, summed over the chip's cores.
    fn run_one_chip_inner(
        &self,
        factory: &ChipFactory,
        chip_idx: usize,
        pairs: &[(Environment, Scheme)],
        profiles: &[WorkloadProfile],
        novar_perf: &[f64],
        tracer: Tracer<'_>,
    ) -> Result<(CellResult, Vec<CellResult>), CampaignError> {
        let _chip_span = tracer.span("chip");
        tracer.event(|| Event::ChipStart {
            chip: chip_idx as u64,
        });
        let chip = factory.chip_traced(self.chip_seed(chip_idx), tracer);
        let mut baseline = CellResult::default();
        let mut cells = vec![CellResult::default(); pairs.len()];
        for core_idx in 0..self.cores_per_chip {
            let core = chip.core(core_idx);

            // Baseline: clocked at fvar, error free.
            let fvar = core.fvar_nominal(&self.config);
            accumulate(
                &mut baseline,
                &self.reference_cell(core, fvar, profiles, novar_perf, tracer)?,
            );

            // Adapted environments. Trained fuzzy controllers are reused
            // across this core's cells, keyed deterministically by
            // environment (ordered map: no hash-order dependence, O(log n)
            // lookup instead of the former linear scan).
            let mut fuzzy_cache: std::collections::BTreeMap<Environment, FuzzyOptimizer> =
                std::collections::BTreeMap::new();
            for ((env, scheme), acc) in pairs.iter().zip(cells.iter_mut()) {
                let exhaustive = ExhaustiveOptimizer::new();
                let optimizer: &dyn Optimizer = match scheme {
                    Scheme::FuzzyDyn => fuzzy_cache.entry(*env).or_insert_with(|| {
                        FuzzyOptimizer::train_traced(
                            &self.config,
                            &chip,
                            core_idx,
                            *env,
                            &self.training,
                            tracer,
                        )
                    }),
                    _ => &exhaustive,
                };
                let cell = match scheme {
                    Scheme::Static => {
                        self.run_static(core, *env, profiles, novar_perf, tracer)?
                    }
                    _ => self.run_dynamic(
                        core, *env, optimizer, *scheme, profiles, novar_perf, tracer,
                    ),
                };
                accumulate(acc, &cell);
            }
        }
        Ok((baseline, cells))
    }

    /// Per-workload breakdown for one (environment, scheme) pair: the mean
    /// cell of each workload over the chip population, in suite order.
    /// (Figures 10–12 report suite averages; this exposes the per-app
    /// detail an artifact evaluation wants.)
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError`] if a statically provisioned operating
    /// point turns out to be thermally infeasible on some chip.
    pub fn run_per_workload(
        &self,
        env: Environment,
        scheme: Scheme,
    ) -> Result<Vec<(&'static str, CellResult)>, CampaignError> {
        assert!(self.chips > 0, "need at least one chip");
        let factory = ChipFactory::new(self.config.clone());
        let profiles: Vec<WorkloadProfile> = self
            .workloads
            .iter()
            .map(|w| profile_workload(w, self.profile_budget, self.base_seed))
            .collect();
        let mut out: Vec<(&'static str, CellResult)> = self
            .workloads
            .iter()
            .map(|w| (w.name, CellResult::default()))
            .collect();
        for chip_idx in 0..self.chips {
            let chip = factory.chip(self.chip_seed(chip_idx));
            for core_idx in 0..self.cores_per_chip {
                let core = chip.core(core_idx);
                let fuzzy = matches!(scheme, Scheme::FuzzyDyn).then(|| {
                    FuzzyOptimizer::train(&self.config, &chip, core_idx, env, &self.training)
                });
                let exhaustive = ExhaustiveOptimizer::new();
                for (profile, (_, acc)) in profiles.iter().zip(out.iter_mut()) {
                    let single = std::slice::from_ref(profile);
                    let ref_perf = [self.novar_perf(profile)];
                    let cell = match (scheme, fuzzy.as_ref()) {
                        (Scheme::Static, _) => {
                            self.run_static(core, env, single, &ref_perf, Tracer::noop())?
                        }
                        (Scheme::FuzzyDyn, Some(fuzzy)) => self.run_dynamic(
                            core, env, fuzzy, scheme, single, &ref_perf, Tracer::noop(),
                        ),
                        _ => self.run_dynamic(
                            core, env, &exhaustive, scheme, single, &ref_perf, Tracer::noop(),
                        ),
                    };
                    accumulate(acc, &cell);
                }
            }
        }
        let samples = self.chips * self.cores_per_chip;
        for (_, c) in out.iter_mut() {
            normalize(c, samples);
        }
        Ok(out)
    }

    /// NoVar performance of one workload (nominal f, no errors), weighted
    /// over phases.
    fn novar_perf(&self, profile: &WorkloadProfile) -> f64 {
        profile.weighted(|ph| {
            PerfModel::new(
                ph.cpi_comp(QueueSize::Full),
                ph.mr,
                ph.mp_ns,
                profile.rp_cycles,
            )
            .perf(self.config.f_nominal_ghz, 0.0)
        })
    }

    /// A non-adaptive reference cell (Baseline or NoVar): fixed frequency,
    /// nominal voltages, no checker, no errors.
    fn reference_cell(
        &self,
        core: &CoreModel,
        f: GHz,
        profiles: &[WorkloadProfile],
        novar_perf: &[f64],
        tracer: Tracer<'_>,
    ) -> Result<CellResult, CampaignError> {
        let settings = vec![(1.0, 0.0); N_SUBSYSTEMS];
        let mut cell = CellResult::default();
        for (profile, &ref_perf) in profiles.iter().zip(novar_perf) {
            for ph in &profile.phases {
                let weight = ph.weight / profiles.len() as f64;
                let eval = core
                    .evaluate(
                        &self.config,
                        self.config.th_c,
                        f,
                        &settings,
                        &ph.activity.alpha_f,
                        &ph.activity.rho,
                        &VariantSelection::default(),
                    )
                    .map_err(|source| {
                        let context = "reference machine at nominal voltages";
                        tracer.event(|| Event::Infeasible {
                            context,
                            subsystem: source.subsystem.to_string(),
                        });
                        CampaignError::Infeasible { context, source }
                    })?;
                let perf = PerfModel::new(
                    ph.cpi_comp(QueueSize::Full),
                    ph.mr,
                    ph.mp_ns,
                    profile.rp_cycles,
                )
                .perf(f.get(), 0.0);
                cell.freq_rel += weight * f.get() / self.config.f_nominal_ghz;
                cell.perf_rel += weight * perf / ref_perf;
                // No checker in the reference machines.
                cell.power_w += weight * (eval.total_power_w - self.config.checker_w);
            }
        }
        Ok(cell)
    }

    /// Dynamic adaptation: the controller runs at every phase.
    #[allow(clippy::too_many_arguments)]
    fn run_dynamic(
        &self,
        core: &CoreModel,
        env: Environment,
        optimizer: &dyn Optimizer,
        scheme: Scheme,
        profiles: &[WorkloadProfile],
        novar_perf: &[f64],
        tracer: Tracer<'_>,
    ) -> CellResult {
        let timeline = AdaptationTimeline::micro08();
        let mut cell = CellResult::default();
        for (profile, &ref_perf) in profiles.iter().zip(novar_perf) {
            let class = profile.class;
            for ph in &profile.phases {
                let weight = ph.weight / profiles.len() as f64;
                let ctx = DecisionContext {
                    scheme: scheme.trace_label(),
                    workload: profile.name,
                    phase: ph.index as u64,
                };
                let d = decide_phase_traced(
                    &self.config,
                    core,
                    optimizer,
                    env,
                    ph,
                    class,
                    profile.rp_cycles,
                    self.config.th_c,
                    &ctx,
                    tracer,
                );
                let overhead = timeline.overhead_fraction(d.retune_steps);
                cell.freq_rel += weight * d.f_ghz / self.config.f_nominal_ghz;
                cell.perf_rel += weight * d.perf_bips * (1.0 - overhead) / ref_perf;
                cell.power_w += weight * self.billed_power(env, d.evaluation.total_power_w);
                cell.outcomes.add(d.outcome);
            }
        }
        // Metrics only (never golden event lines): solver cache counters.
        optimizer.flush_metrics(tracer);
        cell
    }

    /// Static scheme: one conservative configuration per (chip, workload),
    /// chosen for worst-case activity, then held for the whole run.
    fn run_static(
        &self,
        core: &CoreModel,
        env: Environment,
        profiles: &[WorkloadProfile],
        novar_perf: &[f64],
        tracer: Tracer<'_>,
    ) -> Result<CellResult, CampaignError> {
        let exhaustive = ExhaustiveOptimizer::new();
        let mut cell = CellResult::default();
        for (profile, &ref_perf) in profiles.iter().zip(novar_perf) {
            let worst = synthetic_worst_phase(profile);
            let ctx = DecisionContext {
                scheme: Scheme::Static.trace_label(),
                workload: profile.name,
                phase: worst.index as u64,
            };
            // A static configuration cannot react to conditions, so it is
            // provisioned for the hottest heat sink the spec allows
            // (TH_MAX), not the currently sensed one.
            let d = decide_phase_traced(
                &self.config,
                core,
                &exhaustive,
                env,
                &worst,
                profile.class,
                profile.rp_cycles,
                self.config.constraints.th_max_c,
                &ctx,
                tracer,
            );
            // Hold (f, settings, variants) fixed; per-phase consequences.
            for ph in &profile.phases {
                let weight = ph.weight / profiles.len() as f64;
                let eval = core
                    .evaluate(
                        &self.config,
                        self.config.th_c,
                        GHz::raw(d.f_ghz),
                        &d.settings,
                        &ph.activity.alpha_f,
                        &ph.activity.rho,
                        &d.variants,
                    )
                    .map_err(|source| {
                        let context = "worst-case-provisioned static configuration";
                        tracer.event(|| Event::Infeasible {
                            context,
                            subsystem: source.subsystem.to_string(),
                        });
                        CampaignError::Infeasible { context, source }
                    })?;
                let queue = static_queue_size(profile, &d);
                let perf = PerfModel::new(
                    ph.cpi_comp(queue),
                    ph.mr,
                    ph.mp_ns,
                    profile.rp_cycles,
                )
                .perf(d.f_ghz, eval.pe_per_instruction.clamp(0.0, 1.0));
                cell.freq_rel += weight * d.f_ghz / self.config.f_nominal_ghz;
                cell.perf_rel += weight * perf / ref_perf;
                cell.power_w += weight * self.billed_power(env, eval.total_power_w);
            }
        }
        // Metrics only (never golden event lines): solver cache counters.
        exhaustive.flush_metrics(tracer);
        Ok(cell)
    }

    /// Checker power is only billed when the environment has a checker.
    fn billed_power(&self, env: Environment, total_w: f64) -> f64 {
        if env.checker {
            total_w
        } else {
            total_w - self.config.checker_w
        }
    }
}

/// The queue sizing a static decision implies for this workload class.
fn static_queue_size(
    profile: &WorkloadProfile,
    d: &crate::controller::PhaseDecision,
) -> QueueSize {
    use eval_core::QueueChoice;
    use eval_uarch::WorkloadClass;
    match (profile.class, d.variants.int_queue, d.variants.fp_queue) {
        (WorkloadClass::Int, QueueChoice::Small, _) => QueueSize::ThreeQuarters,
        (WorkloadClass::Fp, _, QueueChoice::Small) => QueueSize::ThreeQuarters,
        _ => QueueSize::Full,
    }
}

/// The conservative aggregate a static configuration is provisioned for:
/// worst-case activity/exercise rates and instruction-weighted CPI/miss
/// behaviour.
fn synthetic_worst_phase(profile: &WorkloadProfile) -> PhaseProfile {
    let worst: ActivityVector = profile.worst_case_activity();
    PhaseProfile {
        index: usize::MAX,
        weight: 1.0,
        cpi_comp_full: profile.weighted(|p| p.cpi_comp_full),
        cpi_comp_small: profile.weighted(|p| p.cpi_comp_small),
        mr: profile.weighted(|p| p.mr),
        mp_ns: profile.weighted(|p| p.mp_ns),
        activity: worst,
    }
}

/// A chip that has passed the commit frontier: its trace records are in
/// the caller's sink and (when checkpointing) its sidecar record is on
/// disk. Kept until the end-of-run merge.
#[derive(Debug, Clone)]
enum CommittedChip {
    Ok {
        baseline: CellResult,
        cells: Vec<CellResult>,
    },
    Failed {
        error: String,
    },
}

impl From<ChipOutcome> for CommittedChip {
    fn from(outcome: ChipOutcome) -> Self {
        match outcome {
            ChipOutcome::Completed { baseline, cells } => CommittedChip::Ok { baseline, cells },
            ChipOutcome::Failed { error } => CommittedChip::Failed {
                error: error.to_string(),
            },
        }
    }
}

impl From<&ChipRecord> for CommittedChip {
    fn from(rec: &ChipRecord) -> Self {
        match &rec.outcome {
            RecordedOutcome::Ok { baseline, cells } => CommittedChip::Ok {
                baseline: *baseline,
                cells: cells.clone(),
            },
            RecordedOutcome::Failed { error } => CommittedChip::Failed {
                error: error.clone(),
            },
        }
    }
}

/// Slots for every chip, with the resumed prefix pre-filled (those chips
/// are already committed — the frontier starts past them).
fn prefill_slots(chips: usize, resumed: Vec<ChipRecord>) -> Vec<Option<CommittedChip>> {
    let mut slots: Vec<Option<CommittedChip>> = vec![None; chips];
    for (slot, rec) in slots.iter_mut().zip(&resumed) {
        *slot = Some(CommittedChip::from(rec));
    }
    slots
}

/// The in-order commit pipeline shared by all workers (behind one mutex).
struct CommitState {
    /// Index of the next chip to commit; chips below it are fully in the
    /// sink (and the sidecar, when checkpointing).
    frontier: usize,
    slots: Vec<Option<CommittedChip>>,
    writer: Option<CheckpointWriter>,
    /// First sidecar-append failure; surfaced after the join so the
    /// in-flight sweep finishes cleanly.
    ckpt_error: Option<CheckpointError>,
}

impl CommitState {
    /// Advances the frontier over every contiguously finished chip:
    /// drains and replays its buffer (flushing a streaming sink), bumps
    /// the quarantine counter for failed chips, and appends its
    /// checkpoint record. Replay-before-append is the crash-safety
    /// invariant: a chip in the sidecar is always complete in the trace.
    fn advance(&mut self, campaign: &Campaign, buffers: &[BufferSink], tracer: Tracer<'_>) {
        while self.frontier < self.slots.len() {
            let chip_idx = self.frontier;
            let Some(committed) = self.slots[chip_idx].as_ref() else {
                break;
            };
            let records = buffers[chip_idx].drain();
            let metrics = if self.writer.is_some() {
                capture_metrics(&records)
            } else {
                checkpoint::CapturedMetrics::default()
            };
            tracer.replay(records);
            let outcome = match committed {
                CommittedChip::Ok { baseline, cells } => RecordedOutcome::Ok {
                    baseline: *baseline,
                    cells: cells.clone(),
                },
                CommittedChip::Failed { error } => {
                    tracer.count(names::CAMPAIGN_CHIPS_FAILED);
                    RecordedOutcome::Failed {
                        error: error.clone(),
                    }
                }
            };
            if let Some(writer) = self.writer.as_mut() {
                let rec = ChipRecord {
                    chip: chip_idx,
                    seed: campaign.chip_seed(chip_idx),
                    outcome,
                    metrics,
                };
                if let Err(err) = writer.append(&rec) {
                    self.ckpt_error.get_or_insert(err);
                }
            }
            self.frontier += 1;
        }
    }
}

fn accumulate(acc: &mut CellResult, cell: &CellResult) {
    acc.freq_rel += cell.freq_rel;
    acc.perf_rel += cell.perf_rel;
    acc.power_w += cell.power_w;
    acc.outcomes.merge(&cell.outcomes);
}

fn normalize(cell: &mut CellResult, samples: usize) {
    let n = samples as f64;
    cell.freq_rel /= n;
    cell.perf_rel /= n;
    cell.power_w /= n;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign() -> Campaign {
        let mut c = Campaign::new(2);
        c.profile_budget = 4_000;
        c.workloads = vec![
            Workload::by_name("swim").unwrap(),
            Workload::by_name("crafty").unwrap(),
        ];
        c.training = TrainingBudget {
            examples: 60,
            ..TrainingBudget::default()
        };
        c
    }

    #[test]
    fn baseline_is_slower_than_novar_and_ts_beats_baseline() {
        let c = tiny_campaign();
        let r = c.run(&[Environment::TS], &[Scheme::ExhDyn]).expect("campaign runs");
        assert!(r.baseline.freq_rel < 0.95, "baseline {}", r.baseline.freq_rel);
        assert!((r.novar.freq_rel - 1.0).abs() < 1e-9);
        let ts = r.cell(Environment::TS, Scheme::ExhDyn).unwrap();
        assert!(
            ts.freq_rel > r.baseline.freq_rel,
            "TS {} vs baseline {}",
            ts.freq_rel,
            r.baseline.freq_rel
        );
    }

    #[test]
    fn asv_improves_on_ts_and_power_stays_within_pmax() {
        let c = tiny_campaign();
        let r = c.run(
            &[Environment::TS, Environment::TS_ASV],
            &[Scheme::ExhDyn],
        ).expect("campaign runs");
        let ts = r.cell(Environment::TS, Scheme::ExhDyn).unwrap();
        let asv = r.cell(Environment::TS_ASV, Scheme::ExhDyn).unwrap();
        assert!(asv.freq_rel > ts.freq_rel);
        assert!(asv.power_w <= c.config.constraints.p_max_w + 1e-6);
        assert!(asv.power_w > ts.power_w);
    }

    #[test]
    fn static_is_no_faster_than_dynamic() {
        let c = tiny_campaign();
        let r = c.run(&[Environment::TS_ASV], &[Scheme::Static, Scheme::ExhDyn]).expect("campaign runs");
        let st = r.cell(Environment::TS_ASV, Scheme::Static).unwrap();
        let dy = r.cell(Environment::TS_ASV, Scheme::ExhDyn).unwrap();
        assert!(
            dy.freq_rel >= st.freq_rel - 0.02,
            "dyn {} vs static {}",
            dy.freq_rel,
            st.freq_rel
        );
    }

    #[test]
    fn traced_campaign_matches_untraced_and_buffers_deterministically() {
        use eval_trace::Collector;
        let c = tiny_campaign();
        let envs = [Environment::TS];
        let schemes = [Scheme::Static, Scheme::ExhDyn];
        let plain = c.run(&envs, &schemes).expect("campaign runs");

        let sink_a = Collector::new();
        let traced = c
            .run_traced(&envs, &schemes, Tracer::new(&sink_a))
            .expect("traced campaign runs");
        assert_eq!(plain, traced, "tracing must not perturb results");

        // Start event, per-chip tester events, and one decision per
        // (chip, scheme, workload[, phase]) cell all present.
        let events = sink_a.events();
        assert!(matches!(events[0], Event::CampaignStart { chips: 2, .. }));
        let decisions = events
            .iter()
            .filter(|e| matches!(e, Event::Decision(_)))
            .count();
        // Static: 1 decision/workload/chip; ExhDyn: 1/phase/workload/chip.
        assert!(decisions >= 2 * (2 + 2), "decisions {decisions}");
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::TesterMeasurement { .. })));

        // Same campaign on one thread: byte-identical event payloads.
        let mut serial = c.clone();
        serial.threads = 1;
        let sink_b = Collector::new();
        serial
            .run_traced(&envs, &schemes, Tracer::new(&sink_b))
            .expect("serial traced campaign runs");
        assert_eq!(sink_a.event_lines(), sink_b.event_lines());

        // Buffered replay preserves span records too.
        assert!(sink_a
            .spans()
            .keys()
            .any(|path| path.starts_with("chip")));
    }

    #[test]
    fn dynamic_cells_record_outcomes() {
        let c = tiny_campaign();
        let r = c.run(&[Environment::TS], &[Scheme::ExhDyn]).expect("campaign runs");
        let ts = r.cell(Environment::TS, Scheme::ExhDyn).unwrap();
        assert!(ts.outcomes.total() > 0);
    }
}
