//! Coarse-grain comparator (§7): classic whole-core DVFS.
//!
//! Prior adaptive proposals applied one supply voltage to the whole core
//! ("the application of whole-chip ABB and DVFS"); EVAL's point is that
//! *fine-grain, per-subsystem* control plus global optimization does
//! better. This optimizer restricts the search to a single shared `Vdd`
//! (no body bias), so campaigns can quantify exactly what the extra
//! dimensionality buys.

use eval_core::{EvalConfig, FREQ_LADDER, VDD_LADDER};

use crate::optimizer::{Optimizer, SubsystemScene};

/// Whole-core DVFS: one `(f, Vdd)` pair for the entire core.
///
/// `freq_max` for a subsystem reports the best frequency it could reach at
/// *some* shared voltage; the caller's min-reduction over subsystems is
/// then refined by [`GlobalDvfsOptimizer::best_shared_setting`], which
/// scans the shared ladder directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalDvfsOptimizer {
    /// The shared supply chosen for the current phase (set by
    /// [`GlobalDvfsOptimizer::best_shared_setting`]; nominal by default).
    pub shared_vdd: f64,
}

impl GlobalDvfsOptimizer {
    /// Creates the optimizer at the nominal shared supply.
    pub fn new() -> Self {
        Self { shared_vdd: 1.0 }
    }

    /// Scans the shared-voltage ladder and returns `(vdd, f_core)` with the
    /// highest core frequency: for each voltage, the core frequency is the
    /// minimum over all subsystem scenes of that subsystem's feasible
    /// maximum at that voltage.
    ///
    /// # Panics
    ///
    /// Panics if `scenes` is empty.
    pub fn best_shared_setting(
        config: &EvalConfig,
        scenes: &[SubsystemScene<'_>],
    ) -> (f64, f64) {
        assert!(!scenes.is_empty(), "need at least one subsystem scene");
        let mut best = (1.0, FREQ_LADDER.min);
        for vdd in VDD_LADDER.iter() {
            let mut fcore = f64::INFINITY;
            for scene in scenes {
                // Highest ladder frequency feasible at this shared voltage.
                let mut fmax = FREQ_LADDER.min;
                for i in (0..FREQ_LADDER.len()).rev() {
                    let f = FREQ_LADDER.at(i);
                    if f <= fmax {
                        break;
                    }
                    if scene.check(config, f, vdd, 0.0).is_some() {
                        fmax = f;
                        break;
                    }
                }
                fcore = fcore.min(fmax);
                if fcore <= FREQ_LADDER.min {
                    break;
                }
            }
            if fcore > best.1 {
                best = (vdd, fcore);
            }
        }
        best
    }
}

impl Optimizer for GlobalDvfsOptimizer {
    fn name(&self) -> &'static str {
        "global-dvfs"
    }

    fn freq_max(&self, config: &EvalConfig, scene: &SubsystemScene<'_>) -> f64 {
        // Per-subsystem view at the currently shared voltage.
        let mut fmax = FREQ_LADDER.min;
        for i in (0..FREQ_LADDER.len()).rev() {
            let f = FREQ_LADDER.at(i);
            if scene.check(config, f, self.shared_vdd, 0.0).is_some() {
                fmax = f;
                break;
            }
        }
        fmax
    }

    fn power_settings(
        &self,
        _config: &EvalConfig,
        _scene: &SubsystemScene<'_>,
        _f_core: f64,
    ) -> (f64, f64) {
        // One voltage for everyone: no per-subsystem reshaping possible.
        (self.shared_vdd, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveOptimizer;
    use eval_core::{ChipFactory, Environment, SubsystemId, VariantSelection, N_SUBSYSTEMS};
    use std::sync::OnceLock;

    fn factory() -> &'static ChipFactory {
        static F: OnceLock<ChipFactory> = OnceLock::new();
        F.get_or_init(|| ChipFactory::new(EvalConfig::micro08()))
    }

    fn scenes(chip: &eval_core::ChipModel) -> Vec<SubsystemScene<'_>> {
        let cfg = factory().config();
        SubsystemId::ALL
            .iter()
            .map(|id| SubsystemScene {
                state: chip.core(0).subsystem(*id),
                variants: VariantSelection::default(),
                th_c: cfg.th_c,
                alpha_f: 0.4,
                rho: 0.6,
                pe_budget: cfg.constraints.pe_budget_per_subsystem(N_SUBSYSTEMS),
                env: Environment::TS_ASV,
            })
            .collect()
    }

    #[test]
    fn shared_setting_is_feasible_for_every_subsystem() {
        let cfg = factory().config().clone();
        let chip = factory().chip(31);
        let sc = scenes(&chip);
        let (vdd, fcore) = GlobalDvfsOptimizer::best_shared_setting(&cfg, &sc);
        assert!(eval_core::VDD_LADDER.contains(vdd));
        for scene in &sc {
            assert!(
                scene.check(&cfg, fcore, vdd, 0.0).is_some(),
                "{} infeasible at shared setting",
                scene.state.id()
            );
        }
    }

    #[test]
    fn fine_grain_asv_beats_global_dvfs() {
        // The paper's §7 argument: per-subsystem control dominates a single
        // shared voltage, because slow subsystems need boost while fast
        // ones want savings.
        let cfg = factory().config().clone();
        let exhaustive = ExhaustiveOptimizer::new();
        let mut wins = 0;
        let mut ties = 0;
        for seed in [31, 32, 33, 34] {
            let chip = factory().chip(seed);
            let sc = scenes(&chip);
            let (_, f_global) = GlobalDvfsOptimizer::best_shared_setting(&cfg, &sc);
            let f_fine = sc
                .iter()
                .map(|s| exhaustive.freq_max(&cfg, s))
                .fold(f64::INFINITY, f64::min);
            if f_fine > f_global + 1e-9 {
                wins += 1;
            } else if (f_fine - f_global).abs() < 1e-9 {
                ties += 1;
            }
            assert!(
                f_fine + 1e-9 >= f_global,
                "fine-grain ({f_fine}) must never lose to global ({f_global})"
            );
        }
        assert!(wins + ties == 4);
        assert!(wins >= 1, "fine-grain should win somewhere");
    }

    #[test]
    fn global_optimizer_reports_consistent_per_subsystem_view() {
        let cfg = factory().config().clone();
        let chip = factory().chip(35);
        let sc = scenes(&chip);
        let (vdd, fcore) = GlobalDvfsOptimizer::best_shared_setting(&cfg, &sc);
        let opt = GlobalDvfsOptimizer { shared_vdd: vdd };
        let min_view = sc
            .iter()
            .map(|s| opt.freq_max(&cfg, s))
            .fold(f64::INFINITY, f64::min);
        assert!((min_view - fcore).abs() < 1e-9);
        // Power settings echo the shared voltage.
        assert_eq!(opt.power_settings(&cfg, &sc[0], fcore), (vdd, 0.0));
    }
}
