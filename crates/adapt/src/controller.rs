//! The controller system (§4.3.2–4.3.3): per-phase decision making that
//! glues the `Freq`/`Power` algorithms, the structure-choice rules and the
//! retuning cycles together, plus the adaptation timeline of Figure 6.

use eval_core::{
    CoreEvaluation, CoreModel, Environment, EvalConfig, FuChoice, PerfModel, QueueChoice,
    SubsystemId, VariantSelection, N_SUBSYSTEMS,
};
use eval_uarch::profile::PhaseProfile;
use eval_uarch::{QueueSize, WorkloadClass};

use eval_trace::{names, DecisionEvent, Event, RejectedCandidate, Tracer};

use crate::choice::{choose_fu, choose_queue};
use crate::optimizer::{Optimizer, SubsystemScene};
use crate::retune::{retune_traced, Outcome, RetuneProbe};

/// The chosen configuration for one phase and its measured consequences.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDecision {
    /// Final core frequency after retuning, GHz.
    pub f_ghz: f64,
    /// Per-subsystem `(Vdd, Vbb)`, indexed by [`SubsystemId::index`].
    pub settings: Vec<(f64, f64)>,
    /// Enabled structure variants.
    pub variants: VariantSelection,
    /// Retuning outcome (Figure 13).
    pub outcome: Outcome,
    /// Retuning frequency steps taken.
    pub retune_steps: u32,
    /// Evaluation at the final configuration.
    pub evaluation: CoreEvaluation,
    /// The Equation-5 model used for this phase (with the chosen queue's
    /// `CPIcomp`).
    pub perf_model: PerfModel,
    /// Performance in billions of instructions per second.
    pub perf_bips: f64,
}

/// Identifying context for a traced decision: which scheme is deciding,
/// for which workload, at which phase index. Purely observational — the
/// decision itself never reads it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionContext {
    /// Scheme label (`static`, `fuzzy`, `exhaustive`, `global-dvfs`).
    pub scheme: &'static str,
    /// Workload name, or `runtime` for the deployed adaptation loop.
    pub workload: &'static str,
    /// Phase index within the workload (detector id at run time).
    pub phase: u64,
}

impl DecisionContext {
    /// A placeholder context for untraced calls.
    pub const UNTRACED: DecisionContext = DecisionContext {
        scheme: "untraced",
        workload: "untraced",
        phase: 0,
    };
}

/// Full static counter names per scheme (the registry keys are
/// `&'static str`, so names cannot be concatenated at runtime).
fn scheme_counter(scheme: &str) -> &'static str {
    match scheme {
        "static" => names::DECISION_COUNT_STATIC,
        "fuzzy" => names::DECISION_COUNT_FUZZY,
        "exhaustive" => names::DECISION_COUNT_EXHAUSTIVE,
        "global-dvfs" => names::DECISION_COUNT_GLOBAL_DVFS,
        _ => names::DECISION_COUNT_OTHER,
    }
}

/// Per-scheme decision-latency timer names. The `_us` suffix marks them
/// wall-clock (outside the golden determinism contract); `eval-obs
/// analyze` folds them into per-scheme p50/p95/p99 latency digests.
fn scheme_latency(scheme: &str) -> &'static str {
    match scheme {
        "static" => names::DECISION_LATENCY_STATIC_US,
        "fuzzy" => names::DECISION_LATENCY_FUZZY_US,
        "exhaustive" => names::DECISION_LATENCY_EXHAUSTIVE_US,
        "global-dvfs" => names::DECISION_LATENCY_GLOBAL_DVFS_US,
        _ => names::DECISION_LATENCY_OTHER_US,
    }
}

/// Which constraint bound the final frequency, derived from the retune
/// probe history: the last rejected probe names the binding constraint;
/// no rejection means retuning ran out of ladder.
fn binding_constraint(probes: &[RetuneProbe]) -> &'static str {
    match probes.iter().rev().find_map(|p| p.violation) {
        Some(Outcome::Error) => "error-rate",
        Some(Outcome::Temp) => "temperature",
        Some(Outcome::Power) => "power",
        _ => "ladder-top",
    }
}

fn fu_label(choice: FuChoice) -> &'static str {
    match choice {
        FuChoice::Normal => "normal",
        FuChoice::LowSlope => "low-slope",
    }
}

fn queue_label(choice: QueueChoice) -> &'static str {
    match choice {
        QueueChoice::Full => "full",
        QueueChoice::Small => "small",
    }
}

/// Runs the full §4.2 decision procedure for one phase.
///
/// 1. Run the `Freq` algorithm per subsystem (via `optimizer`).
/// 2. Apply the FU-replication rule of Figure 4 (if the environment has
///    replicated FUs) for the FU matching the application class.
/// 3. Apply the issue-queue rule (estimated Equation-5 performance with
///    the counter-measured `CPIcomp` of each size).
/// 4. `f_core` = min over subsystems; run the `Power` algorithm at
///    `f_core`.
/// 5. Run the retuning cycles and return the final configuration.
// The argument list mirrors the controller's inputs (§4.1).
#[allow(clippy::too_many_arguments)]
pub fn decide_phase(
    config: &EvalConfig,
    core: &CoreModel,
    optimizer: &dyn Optimizer,
    env: Environment,
    phase: &PhaseProfile,
    class: WorkloadClass,
    rp_cycles: f64,
    th_c: f64,
) -> PhaseDecision {
    decide_phase_traced(
        config,
        core,
        optimizer,
        env,
        phase,
        class,
        rp_cycles,
        th_c,
        &DecisionContext::UNTRACED,
        Tracer::noop(),
    )
}

/// [`decide_phase`] with full observability: a `decide` span, aggregate
/// and per-scheme `decision.latency*_us` timers, per-scheme decision counters,
/// frequency/error-rate histogram observations, and one
/// [`Decision`](Event::Decision) event carrying the chosen operating
/// point, the binding constraint, the rejected retune candidates, and
/// the Equation-5 CPI breakdown. The untraced path is bit-identical to
/// [`decide_phase`].
#[allow(clippy::too_many_arguments)]
pub fn decide_phase_traced(
    config: &EvalConfig,
    core: &CoreModel,
    optimizer: &dyn Optimizer,
    env: Environment,
    phase: &PhaseProfile,
    class: WorkloadClass,
    rp_cycles: f64,
    th_c: f64,
    ctx: &DecisionContext,
    tracer: Tracer<'_>,
) -> PhaseDecision {
    let _span = tracer.span("decide");
    let _latency = tracer.timer(names::DECISION_LATENCY_US);
    let _scheme_latency = tracer.timer(scheme_latency(ctx.scheme));
    let alpha = phase.activity.alpha_f;
    let rho = phase.activity.rho;
    let pe_budget = config.constraints.pe_budget_per_subsystem(N_SUBSYSTEMS);

    let scene = |id: SubsystemId, variants: VariantSelection| SubsystemScene {
        state: core.subsystem(id),
        variants,
        th_c,
        alpha_f: alpha[id.index()],
        rho: rho[id.index()].max(1e-3),
        pe_budget,
        env,
    };
    let fmax = |id: SubsystemId, variants: VariantSelection| {
        optimizer.freq_max(config, &scene(id, variants))
    };

    let fu_id = match class {
        WorkloadClass::Int => SubsystemId::IntAlu,
        WorkloadClass::Fp => SubsystemId::FpUnit,
    };
    let queue_id = match class {
        WorkloadClass::Int => SubsystemId::IntQueue,
        WorkloadClass::Fp => SubsystemId::FpQueue,
    };

    let base = VariantSelection::default();
    let mut fmax_base: [f64; N_SUBSYSTEMS] = [0.0; N_SUBSYSTEMS];
    for id in SubsystemId::ALL {
        fmax_base[id.index()] = fmax(id, base);
    }

    // --- FU replication rule (Figure 4) ---
    let mut variants = base;
    if env.fu_replication {
        let f_normal = fmax_base[fu_id.index()];
        let with_low = match fu_id {
            SubsystemId::IntAlu => VariantSelection {
                int_fu: FuChoice::LowSlope,
                ..base
            },
            _ => VariantSelection {
                fp_fu: FuChoice::LowSlope,
                ..base
            },
        };
        let f_low = fmax(fu_id, with_low).max(f_normal);
        let min_rest = SubsystemId::ALL
            .iter()
            .filter(|id| **id != fu_id)
            .map(|id| fmax_base[id.index()])
            .fold(f64::INFINITY, f64::min);
        if choose_fu(f_normal, f_low, min_rest) {
            variants = with_low;
            fmax_base[fu_id.index()] = f_low;
        }
    }

    // --- Issue-queue rule ---
    if env.queue {
        let with_small = match queue_id {
            SubsystemId::IntQueue => VariantSelection {
                int_queue: QueueChoice::Small,
                ..variants
            },
            _ => VariantSelection {
                fp_queue: QueueChoice::Small,
                ..variants
            },
        };
        let f_queue_small = fmax(queue_id, with_small);
        let min_core = |queue_fmax: f64| {
            SubsystemId::ALL
                .iter()
                .map(|id| {
                    if *id == queue_id {
                        queue_fmax
                    } else {
                        fmax_base[id.index()]
                    }
                })
                .fold(f64::INFINITY, f64::min)
        };
        let f_core_full = min_core(fmax_base[queue_id.index()]);
        let f_core_small = min_core(f_queue_small);
        let model_full = PerfModel::new(
            phase.cpi_comp(QueueSize::Full),
            phase.mr,
            phase.mp_ns,
            rp_cycles,
        );
        let model_small = PerfModel::new(
            phase.cpi_comp(QueueSize::ThreeQuarters),
            phase.mr,
            phase.mp_ns,
            rp_cycles,
        );
        if choose_queue(&model_full, f_core_full, &model_small, f_core_small) {
            variants = with_small;
            fmax_base[queue_id.index()] = f_queue_small;
        }
    }

    // --- core frequency and Power algorithm ---
    let f_core = fmax_base
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let settings: Vec<(f64, f64)> = SubsystemId::ALL
        .iter()
        .map(|id| optimizer.power_settings(config, &scene(*id, variants), f_core))
        .collect();

    // --- retuning cycles ---
    let result = retune_traced(
        config, core, th_c, f_core, &settings, &alpha, &rho, &variants, tracer,
    );

    let queue_size = match (class, variants.int_queue, variants.fp_queue) {
        (WorkloadClass::Int, QueueChoice::Small, _) => QueueSize::ThreeQuarters,
        (WorkloadClass::Fp, _, QueueChoice::Small) => QueueSize::ThreeQuarters,
        _ => QueueSize::Full,
    };
    let perf_model = PerfModel::new(phase.cpi_comp(queue_size), phase.mr, phase.mp_ns, rp_cycles);
    let pe = result.evaluation.pe_per_instruction.clamp(0.0, 1.0);
    let perf_bips = perf_model.perf(result.f_ghz, pe);

    tracer.count(names::DECISION_COUNT);
    tracer.count(scheme_counter(ctx.scheme));
    tracer.observe(names::DECISION_F_GHZ, result.f_ghz);
    tracer.observe(names::DECISION_PE_PER_INSTRUCTION, pe);
    tracer.event(|| {
        let breakdown = perf_model.breakdown(result.f_ghz, pe);
        Event::Decision(Box::new(DecisionEvent {
            scheme: ctx.scheme,
            env: env.name,
            workload: ctx.workload,
            phase: ctx.phase,
            f_ghz: result.f_ghz,
            settings: settings.clone(),
            int_fu: fu_label(variants.int_fu),
            fp_fu: fu_label(variants.fp_fu),
            int_queue: queue_label(variants.int_queue),
            fp_queue: queue_label(variants.fp_queue),
            outcome: result.outcome.label(),
            binding: binding_constraint(&result.probes),
            retune_steps: result.steps,
            rejected: result
                .probes
                .iter()
                .filter_map(|p| {
                    p.violation.map(|v| RejectedCandidate {
                        f_ghz: p.f_ghz,
                        violation: v.label(),
                    })
                })
                .collect(),
            pe_per_instruction: result.evaluation.pe_per_instruction,
            power_w: result.evaluation.total_power_w,
            max_t_c: result.evaluation.max_t_c,
            perf_bips,
            cpi_comp: breakdown.comp,
            cpi_mem: breakdown.mem,
            cpi_recovery: breakdown.recovery,
        }))
    });

    PhaseDecision {
        f_ghz: result.f_ghz,
        settings,
        variants,
        outcome: result.outcome,
        retune_steps: result.steps,
        evaluation: result.evaluation,
        perf_model,
        perf_bips,
    }
}

/// The timeline of Figure 6, for overhead accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptationTimeline {
    /// Mean stable-phase length (the paper measures ~120 ms in SPEC).
    pub phase_length_us: f64,
    /// Counter-based `alpha_f`/`CPIcomp` measurement window.
    pub measure_us: f64,
    /// Fuzzy-controller software runtime (~6 us at 4 GHz).
    pub controller_us: f64,
    /// Voltage/frequency transition time (XScale-style).
    pub transition_us: f64,
    /// Per-retuning-step cost (one 100 MHz move).
    pub retune_step_us: f64,
}

impl AdaptationTimeline {
    /// Figure 6 values.
    pub fn micro08() -> Self {
        Self {
            phase_length_us: 120_000.0,
            measure_us: 20.0,
            controller_us: 6.0,
            transition_us: 10.0,
            retune_step_us: 0.5,
        }
    }

    /// Fraction of a phase lost to adaptation when the controller runs and
    /// retuning takes `steps` moves. The application keeps running during
    /// measurement; only the controller runtime and transition stall it.
    pub fn overhead_fraction(&self, steps: u32) -> f64 {
        (self.controller_us + self.transition_us + self.retune_step_us * f64::from(steps))
            / self.phase_length_us
    }

    /// Overhead when a phase was seen before (saved configuration reused:
    /// no controller run, just the transition).
    pub fn overhead_fraction_reuse(&self) -> f64 {
        self.transition_us / self.phase_length_us
    }
}

impl Default for AdaptationTimeline {
    fn default() -> Self {
        Self::micro08()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveOptimizer;
    use eval_core::ChipFactory;
    use eval_uarch::{profile_workload, Workload};
    use std::sync::OnceLock;

    fn factory() -> &'static ChipFactory {
        static F: OnceLock<ChipFactory> = OnceLock::new();
        F.get_or_init(|| ChipFactory::new(EvalConfig::micro08()))
    }

    fn decide(workload: &str, env: Environment, seed: u64) -> PhaseDecision {
        let cfg = factory().config().clone();
        let chip = factory().chip(seed);
        let w = Workload::by_name(workload).unwrap();
        let profile = profile_workload(&w, 6_000, 5);
        decide_phase(
            &cfg,
            chip.core(0),
            &ExhaustiveOptimizer::new(),
            env,
            &profile.phases[0],
            w.class,
            profile.rp_cycles,
            cfg.th_c,
        )
    }

    #[test]
    fn decisions_respect_all_constraints() {
        let cfg = factory().config().clone();
        for env in [Environment::TS, Environment::TS_ASV, Environment::TS_ASV_Q_FU] {
            let d = decide("swim", env, 8);
            assert!(d.evaluation.pe_per_instruction <= cfg.constraints.pe_max);
            assert!(d.evaluation.max_t_c <= cfg.constraints.t_max_c);
            assert!(d.evaluation.total_power_w <= cfg.constraints.p_max_w);
            assert!(d.perf_bips > 0.0);
        }
    }

    #[test]
    fn asv_environment_is_at_least_as_fast_as_ts() {
        let ts = decide("gcc", Environment::TS, 9);
        let asv = decide("gcc", Environment::TS_ASV, 9);
        assert!(
            asv.f_ghz >= ts.f_ghz - 1e-9,
            "TS+ASV {} should be >= TS {}",
            asv.f_ghz,
            ts.f_ghz
        );
    }

    #[test]
    fn ts_environment_keeps_nominal_voltages() {
        let d = decide("mcf", Environment::TS, 10);
        assert!(d.settings.iter().all(|&(vdd, vbb)| vdd == 1.0 && vbb == 0.0));
    }

    #[test]
    fn fp_workload_adapts_fp_structures_only() {
        let d = decide("swim", Environment::TS_ASV_Q_FU, 11);
        // Integer-side variants stay at their defaults for an FP app.
        assert_eq!(d.variants.int_fu, FuChoice::Normal);
        assert_eq!(d.variants.int_queue, QueueChoice::Full);
    }

    #[test]
    fn traced_decision_matches_untraced_and_emits_full_event() {
        let cfg = factory().config().clone();
        let chip = factory().chip(8);
        let w = Workload::by_name("swim").unwrap();
        let profile = profile_workload(&w, 6_000, 5);
        let plain = decide_phase(
            &cfg,
            chip.core(0),
            &ExhaustiveOptimizer::new(),
            Environment::TS_ASV,
            &profile.phases[0],
            w.class,
            profile.rp_cycles,
            cfg.th_c,
        );
        let collector = eval_trace::Collector::new();
        let ctx = DecisionContext {
            scheme: "exhaustive",
            workload: "swim",
            phase: 0,
        };
        let traced = decide_phase_traced(
            &cfg,
            chip.core(0),
            &ExhaustiveOptimizer::new(),
            Environment::TS_ASV,
            &profile.phases[0],
            w.class,
            profile.rp_cycles,
            cfg.th_c,
            &ctx,
            eval_trace::Tracer::new(&collector),
        );
        // Tracing must not perturb the decision.
        assert_eq!(plain, traced);

        let reg = collector.registry();
        assert_eq!(reg.counter("decision.count"), 1);
        assert_eq!(reg.counter("decision.count.exhaustive"), 1);
        let decisions: Vec<_> = collector
            .events()
            .into_iter()
            .filter_map(|e| match e {
                Event::Decision(d) => Some(d),
                _ => None,
            })
            .collect();
        assert_eq!(decisions.len(), 1);
        let d = &decisions[0];
        assert_eq!(d.scheme, "exhaustive");
        assert_eq!(d.env, "TS+ASV");
        assert_eq!(d.workload, "swim");
        assert_eq!(d.f_ghz, traced.f_ghz);
        assert_eq!(d.settings.len(), N_SUBSYSTEMS);
        assert!(
            ["error-rate", "temperature", "power", "ladder-top"].contains(&d.binding),
            "binding = {}",
            d.binding
        );
        // CPI breakdown is consistent with the decision's perf model.
        let total = d.cpi_comp + d.cpi_mem + d.cpi_recovery;
        let pe = traced.evaluation.pe_per_instruction.clamp(0.0, 1.0);
        assert!((total - traced.perf_model.cpi(traced.f_ghz, pe)).abs() < 1e-12);
        // Span and latency records landed too.
        assert!(collector.spans().keys().any(|k| k.contains("decide")));
        assert!(reg.histogram("decision.latency_us").is_some_and(|h| h.count() == 1));
    }

    #[test]
    fn timeline_overhead_is_small() {
        let t = AdaptationTimeline::micro08();
        // Even a long retuning run costs well under 0.1% of a phase.
        assert!(t.overhead_fraction(20) < 1e-3);
        assert!(t.overhead_fraction_reuse() < t.overhead_fraction(0));
    }
}
