//! The optimizer interface shared by the exhaustive oracle and the fuzzy
//! controller.

use eval_core::{
    Environment, EvalConfig, OperatingConditions, SubsystemState, VariantSelection,
};
use eval_power::{solve_thermal, OperatingPoint, ThermalEnvironment};
use eval_units::{GHz, Volts};

/// Everything the per-subsystem `Freq`/`Power` algorithms see about one
/// subsystem in one phase (the paper's `{TH, Rth, Kdyn, alpha_f, Ksta,
/// Vt0}` inputs of Figure 3, carried alongside the subsystem's timing
/// model and error budget).
#[derive(Debug, Clone)]
pub struct SubsystemScene<'a> {
    /// The subsystem's per-chip state (timing + power parameters).
    pub state: &'a SubsystemState,
    /// Structure variants currently enabled.
    pub variants: VariantSelection,
    /// Heat-sink temperature, Celsius (sensed).
    pub th_c: f64,
    /// Activity factor, accesses/cycle (sensed via counters).
    pub alpha_f: f64,
    /// Exercise rate, accesses/instruction (weights PE into err/inst).
    pub rho: f64,
    /// This subsystem's share of `PEMAX` (errors/instruction).
    pub pe_budget: f64,
    /// The environment's capability set (which ladders are usable).
    pub env: Environment,
}

impl<'a> SubsystemScene<'a> {
    /// Whether `(f, vdd, vbb)` meets the temperature and error-rate
    /// constraints for this subsystem, and if so at what cost.
    /// Returns `Some((power_w, t_c))` when feasible.
    pub fn check(&self, config: &EvalConfig, f_ghz: f64, vdd: f64, vbb: f64) -> Option<(f64, f64)> {
        // Candidates come off the actuator ladders (validated once at
        // construction), so the unchecked constructor is safe here.
        let op = OperatingPoint::raw(f_ghz, vdd, vbb);
        let env = ThermalEnvironment {
            th_c: self.th_c,
            alpha_f: self.alpha_f,
        };
        let params = self.state.power_params(&self.variants);
        let sol = solve_thermal(&params, &env, &op, &config.device).ok()?;
        if sol.t_c > config.constraints.t_max_c {
            return None;
        }
        let cond = OperatingConditions {
            vdd: Volts::raw(vdd),
            vbb: Volts::raw(vbb),
            t_c: sol.t_c,
        };
        let pe = self.rho * self.state.timing(&self.variants).pe_access(GHz::raw(f_ghz), &cond);
        if pe > self.pe_budget {
            return None;
        }
        Some((sol.total_w(), sol.t_c))
    }

    /// The supply-voltage settings this environment may use.
    pub fn vdd_options(&self) -> Vec<f64> {
        if self.env.asv {
            eval_core::VDD_LADDER.iter().collect()
        } else {
            vec![1.0]
        }
    }

    /// The body-bias settings this environment may use.
    pub fn vbb_options(&self) -> Vec<f64> {
        if self.env.abb {
            eval_core::VBB_LADDER.iter().collect()
        } else {
            vec![0.0]
        }
    }
}

/// A `Freq`/`Power` algorithm backend (Figure 3): one box per subsystem.
pub trait Optimizer {
    /// Stable label for traces and span names (`exhaustive`, `fuzzy`, …).
    fn name(&self) -> &'static str {
        "optimizer"
    }

    /// The `Freq` algorithm for one subsystem: the maximum ladder frequency
    /// at which the subsystem can cycle using any permitted `(Vdd, Vbb)`
    /// without violating its temperature or error-rate constraints.
    fn freq_max(&self, config: &EvalConfig, scene: &SubsystemScene<'_>) -> f64;

    /// The `Power` algorithm for one subsystem: the `(Vdd, Vbb)` that
    /// minimizes subsystem power at core frequency `f_core` without
    /// violating constraints. Falls back to the most aggressive setting if
    /// nothing on the ladder is feasible (retuning will then lower `f`).
    fn power_settings(
        &self,
        config: &EvalConfig,
        scene: &SubsystemScene<'_>,
        f_core: f64,
    ) -> (f64, f64);
}
