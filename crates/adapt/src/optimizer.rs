//! The optimizer interface shared by the exhaustive oracle and the fuzzy
//! controller, plus [`SceneEval`] — the hoisted, cache-backed evaluation
//! of one scene that forms the operating-point fast path.
//
// lint:hot-path — this module is on the operating-point fast path; the
// no-alloc-in-check rule forbids Vec construction outside tests here.

use eval_core::{
    Environment, EvalConfig, OperatingConditions, SubsystemState, VariantSelection,
};
use eval_power::{
    solve_thermal, solve_thermal_reference, OperatingPoint, SolveCache, SubsystemPowerParams,
    ThermalEnvironment, FREQ_LADDER,
};
use eval_timing::StageTiming;
use eval_trace::Tracer;
use eval_units::{GHz, Volts};
use eval_variation::DeviceParams;

/// Everything the per-subsystem `Freq`/`Power` algorithms see about one
/// subsystem in one phase (the paper's `{TH, Rth, Kdyn, alpha_f, Ksta,
/// Vt0}` inputs of Figure 3, carried alongside the subsystem's timing
/// model and error budget).
#[derive(Debug, Clone)]
pub struct SubsystemScene<'a> {
    /// The subsystem's per-chip state (timing + power parameters).
    pub state: &'a SubsystemState,
    /// Structure variants currently enabled.
    pub variants: VariantSelection,
    /// Heat-sink temperature, Celsius (sensed).
    pub th_c: f64,
    /// Activity factor, accesses/cycle (sensed via counters).
    pub alpha_f: f64,
    /// Exercise rate, accesses/instruction (weights PE into err/inst).
    pub rho: f64,
    /// This subsystem's share of `PEMAX` (errors/instruction).
    pub pe_budget: f64,
    /// The environment's capability set (which ladders are usable).
    pub env: Environment,
}

impl<'a> SubsystemScene<'a> {
    /// Whether `(f, vdd, vbb)` meets the temperature and error-rate
    /// constraints for this subsystem, and if so at what cost.
    /// Returns `Some((power_w, t_c))` when feasible.
    pub fn check(&self, config: &EvalConfig, f_ghz: f64, vdd: f64, vbb: f64) -> Option<(f64, f64)> {
        // Candidates come off the actuator ladders (validated once at
        // construction), so the unchecked constructor is safe here.
        let op = OperatingPoint::raw(f_ghz, vdd, vbb);
        let env = ThermalEnvironment {
            th_c: self.th_c,
            alpha_f: self.alpha_f,
        };
        let params = self.state.power_params(&self.variants);
        let sol = solve_thermal(&params, &env, &op, &config.device).ok()?;
        if sol.t_c > config.constraints.t_max_c {
            return None;
        }
        let cond = OperatingConditions {
            vdd: Volts::raw(vdd),
            vbb: Volts::raw(vbb),
            t_c: sol.t_c,
        };
        let pe = self.rho * self.state.timing(&self.variants).pe_access(GHz::raw(f_ghz), &cond);
        if pe > self.pe_budget {
            return None;
        }
        Some((sol.total_w(), sol.t_c))
    }

    /// [`check`] evaluated with the original damped reference solver and
    /// the unbounded error-rate evaluation: the independent "before"
    /// implementation kept for equivalence tests and benchmarks.
    ///
    /// [`check`]: SubsystemScene::check
    pub fn check_reference(
        &self,
        config: &EvalConfig,
        f_ghz: f64,
        vdd: f64,
        vbb: f64,
    ) -> Option<(f64, f64)> {
        let op = OperatingPoint::raw(f_ghz, vdd, vbb);
        let env = ThermalEnvironment {
            th_c: self.th_c,
            alpha_f: self.alpha_f,
        };
        let params = self.state.power_params(&self.variants);
        let sol = solve_thermal_reference(&params, &env, &op, &config.device).ok()?;
        if sol.t_c > config.constraints.t_max_c {
            return None;
        }
        let cond = OperatingConditions {
            vdd: Volts::raw(vdd),
            vbb: Volts::raw(vbb),
            t_c: sol.t_c,
        };
        let pe = self.rho * self.state.timing(&self.variants).pe_access(GHz::raw(f_ghz), &cond);
        if pe > self.pe_budget {
            return None;
        }
        Some((sol.total_w(), sol.t_c))
    }

    /// The supply-voltage settings this environment may use.
    pub fn vdd_options(&self) -> &'static [f64] {
        if self.env.asv {
            eval_power::vdd_steps()
        } else {
            &[1.0]
        }
    }

    /// The body-bias settings this environment may use.
    pub fn vbb_options(&self) -> &'static [f64] {
        if self.env.abb {
            eval_power::vbb_steps()
        } else {
            &[0.0]
        }
    }
}

/// One scene with its per-candidate invariants hoisted: the
/// variant-resolved power parameters, the timing model, the thermal
/// environment, and the constraint thresholds are all resolved once per
/// scene instead of once per `(f, Vdd, Vbb)` candidate. Ladder-indexed
/// candidates additionally route through a [`SolveCache`] for memoized,
/// warm-started thermal solves.
#[derive(Debug, Clone)]
pub struct SceneEval<'a> {
    params: SubsystemPowerParams,
    timing: &'a StageTiming,
    tenv: ThermalEnvironment,
    device: &'a DeviceParams,
    t_max_c: f64,
    rho: f64,
    pe_budget: f64,
}

impl<'a> SceneEval<'a> {
    /// Hoists the scene's invariants out of the candidate loops.
    pub fn new(config: &'a EvalConfig, scene: &SubsystemScene<'a>) -> Self {
        SceneEval {
            params: scene.state.power_params(&scene.variants),
            timing: scene.state.timing(&scene.variants),
            tenv: ThermalEnvironment {
                th_c: scene.th_c,
                alpha_f: scene.alpha_f,
            },
            device: &config.device,
            t_max_c: config.constraints.t_max_c,
            rho: scene.rho,
            pe_budget: scene.pe_budget,
        }
    }

    /// [`SubsystemScene::check`] for the frequency-ladder point `f_idx`,
    /// memoized through `cache`. Feasibility classification matches the
    /// uncached check; the returned `(power_w, t_c)` are the cache's
    /// canonical values (a pure function of the operating point — see
    /// `eval_power::cache`).
    pub fn check_at(
        &self,
        cache: &mut SolveCache,
        f_idx: usize,
        vdd: f64,
        vbb: f64,
    ) -> Option<(f64, f64)> {
        let sol = cache
            .solve_ladder(
                &self.params,
                &self.tenv,
                self.device,
                f_idx,
                Volts::raw(vdd),
                Volts::raw(vbb),
            )
            .ok()?;
        if sol.t_c > self.t_max_c {
            return None;
        }
        let cond = OperatingConditions {
            vdd: Volts::raw(vdd),
            vbb: Volts::raw(vbb),
            t_c: sol.t_c,
        };
        self.timing
            .pe_access_bounded(GHz::raw(FREQ_LADDER.at(f_idx)), &cond, self.rho, self.pe_budget)?;
        Some((sol.total_w(), sol.t_c))
    }

    /// [`SubsystemScene::check`] for an arbitrary (possibly off-ladder)
    /// frequency: a direct canonical cold-start solve, no memoization.
    pub fn check_free(&self, f_ghz: f64, vdd: f64, vbb: f64) -> Option<(f64, f64)> {
        let op = OperatingPoint::raw(f_ghz, vdd, vbb);
        let sol = solve_thermal(&self.params, &self.tenv, &op, self.device).ok()?;
        if sol.t_c > self.t_max_c {
            return None;
        }
        let cond = OperatingConditions {
            vdd: Volts::raw(vdd),
            vbb: Volts::raw(vbb),
            t_c: sol.t_c,
        };
        self.timing
            .pe_access_bounded(GHz::raw(f_ghz), &cond, self.rho, self.pe_budget)?;
        Some((sol.total_w(), sol.t_c))
    }
}

/// A `Freq`/`Power` algorithm backend (Figure 3): one box per subsystem.
pub trait Optimizer {
    /// Stable label for traces and span names (`exhaustive`, `fuzzy`, …).
    fn name(&self) -> &'static str {
        "optimizer"
    }

    /// The `Freq` algorithm for one subsystem: the maximum ladder frequency
    /// at which the subsystem can cycle using any permitted `(Vdd, Vbb)`
    /// without violating its temperature or error-rate constraints.
    fn freq_max(&self, config: &EvalConfig, scene: &SubsystemScene<'_>) -> f64;

    /// The `Power` algorithm for one subsystem: the `(Vdd, Vbb)` that
    /// minimizes subsystem power at core frequency `f_core` without
    /// violating constraints. Falls back to the most aggressive setting if
    /// nothing on the ladder is feasible (retuning will then lower `f`).
    fn power_settings(
        &self,
        config: &EvalConfig,
        scene: &SubsystemScene<'_>,
        f_core: f64,
    ) -> (f64, f64);

    /// Drains any accumulated solver/cache counters into eval-trace
    /// metrics. Drivers call this at natural boundaries (end of a
    /// campaign cell, end of training); the default does nothing.
    fn flush_metrics(&self, _tracer: Tracer<'_>) {}
}
