//! The `Exhaustive` algorithm (§4.3.1): grid search over the actuator
//! ladders. Too slow to run on-the-fly in a real processor — here it is
//! both the oracle the fuzzy controllers are trained against and the
//! `Exh-Dyn` comparison scheme of Figures 10–12.

use eval_core::{EvalConfig, FREQ_LADDER};

use crate::optimizer::{Optimizer, SubsystemScene};

/// Exhaustive grid search over `(f, Vdd, Vbb)`.
///
/// For each `(Vdd, Vbb)` pair the feasible frequency set is an interval
/// (both the error rate and the temperature grow with `f`), so the scan
/// over the frequency ladder is a binary search rather than a linear one.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustiveOptimizer;

impl ExhaustiveOptimizer {
    /// Creates the optimizer.
    pub fn new() -> Self {
        Self
    }

    /// Largest feasible ladder index at fixed `(vdd, vbb)` that is at least
    /// `floor_idx`, or `None`. Exploits monotonicity: error rate and
    /// temperature both grow with `f`, so feasibility is a prefix of the
    /// ladder and a binary search suffices. Callers prune by passing the
    /// best index found so far — one infeasibility check then rejects the
    /// whole `(vdd, vbb)` setting.
    fn fmax_index_at(
        config: &EvalConfig,
        scene: &SubsystemScene<'_>,
        vdd: f64,
        vbb: f64,
        floor_idx: usize,
    ) -> Option<usize> {
        let n = FREQ_LADDER.len();
        scene
            .check(config, FREQ_LADDER.at(floor_idx), vdd, vbb)?;
        let (mut lo, mut hi) = (floor_idx, n - 1);
        if scene.check(config, FREQ_LADDER.at(hi), vdd, vbb).is_some() {
            return Some(hi);
        }
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if scene.check(config, FREQ_LADDER.at(mid), vdd, vbb).is_some() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }
}

impl Optimizer for ExhaustiveOptimizer {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn freq_max(&self, config: &EvalConfig, scene: &SubsystemScene<'_>) -> f64 {
        let mut best: Option<usize> = None;
        for vdd in scene.vdd_options() {
            for vbb in scene.vbb_options() {
                let floor = best.map_or(0, |b| (b + 1).min(FREQ_LADDER.len() - 1));
                if let Some(idx) = Self::fmax_index_at(config, scene, vdd, vbb, floor) {
                    if best.is_none_or(|b| idx > b) {
                        best = Some(idx);
                    }
                }
            }
        }
        FREQ_LADDER.at(best.unwrap_or(0))
    }

    fn power_settings(
        &self,
        config: &EvalConfig,
        scene: &SubsystemScene<'_>,
        f_core: f64,
    ) -> (f64, f64) {
        let mut best: Option<(f64, f64, f64)> = None; // (power, vdd, vbb)
        for vdd in scene.vdd_options() {
            for vbb in scene.vbb_options() {
                if let Some((p, _t)) = scene.check(config, f_core, vdd, vbb) {
                    if best.is_none_or(|(bp, _, _)| p < bp) {
                        best = Some((p, vdd, vbb));
                    }
                }
            }
        }
        match best {
            Some((_, vdd, vbb)) => (vdd, vbb),
            // Nothing feasible at f_core: fall back to the nominal setting
            // (always electrically safe) and let retuning walk the
            // frequency down. Aggressive voltages would only deepen the
            // leakage/temperature feedback that made f_core infeasible.
            None => (1.0, 0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eval_core::{
        ChipFactory, Environment, EvalConfig, SubsystemId, VariantSelection, N_SUBSYSTEMS,
    };
    use std::sync::OnceLock;

    fn factory() -> &'static ChipFactory {
        static F: OnceLock<ChipFactory> = OnceLock::new();
        F.get_or_init(|| ChipFactory::new(EvalConfig::micro08()))
    }

    fn scene<'a>(
        state: &'a eval_core::SubsystemState,
        env: Environment,
    ) -> SubsystemScene<'a> {
        SubsystemScene {
            state,
            variants: VariantSelection::default(),
            th_c: 60.0,
            alpha_f: 0.5,
            rho: 0.6,
            pe_budget: 1e-4 / N_SUBSYSTEMS as f64,
            env,
        }
    }

    #[test]
    fn asv_raises_fmax_over_ts() {
        let cfg = factory().config().clone();
        let chip = factory().chip(1);
        let opt = ExhaustiveOptimizer::new();
        let state = chip.core(0).subsystem(SubsystemId::IntAlu);
        let f_ts = opt.freq_max(&cfg, &scene(state, Environment::TS));
        let f_asv = opt.freq_max(&cfg, &scene(state, Environment::TS_ASV));
        assert!(f_asv > f_ts, "ASV {f_asv} should beat TS {f_ts}");
    }

    #[test]
    fn freq_result_is_on_the_ladder_and_feasible() {
        let cfg = factory().config().clone();
        let chip = factory().chip(2);
        let opt = ExhaustiveOptimizer::new();
        for id in [SubsystemId::Dcache, SubsystemId::FpUnit, SubsystemId::IntQueue] {
            let state = chip.core(0).subsystem(id);
            let sc = scene(state, Environment::TS_ASV);
            let f = opt.freq_max(&cfg, &sc);
            assert!(FREQ_LADDER.contains(f), "{id}: off-ladder {f}");
            // Feasible at some voltage setting.
            let feasible = sc
                .vdd_options()
                .iter()
                .any(|&vdd| sc.check(&cfg, f, vdd, 0.0).is_some());
            assert!(feasible, "{id}: fmax {f} infeasible everywhere");
        }
    }

    #[test]
    fn power_settings_meet_constraints_when_feasible() {
        let cfg = factory().config().clone();
        let chip = factory().chip(3);
        let opt = ExhaustiveOptimizer::new();
        let state = chip.core(0).subsystem(SubsystemId::IntQueue);
        let sc = scene(state, Environment::TS_ASV);
        let fmax = opt.freq_max(&cfg, &sc);
        // At a core frequency below this subsystem's max, the power
        // algorithm must pick something feasible.
        let f_core = (fmax - 0.3).max(FREQ_LADDER.min);
        let (vdd, vbb) = opt.power_settings(&cfg, &sc, f_core);
        assert!(sc.check(&cfg, f_core, vdd, vbb).is_some());
    }

    #[test]
    fn power_algorithm_relaxes_voltage_at_lower_frequency() {
        // At a low core frequency the subsystem should not need the
        // highest supply.
        let cfg = factory().config().clone();
        let chip = factory().chip(4);
        let opt = ExhaustiveOptimizer::new();
        let state = chip.core(0).subsystem(SubsystemId::IntAlu);
        let sc = scene(state, Environment::TS_ASV);
        let (vdd_low, _) = opt.power_settings(&cfg, &sc, 2.4);
        let fmax = opt.freq_max(&cfg, &sc);
        let (vdd_high, _) = opt.power_settings(&cfg, &sc, fmax);
        assert!(
            vdd_low <= vdd_high,
            "low-f vdd {vdd_low} vs max-f vdd {vdd_high}"
        );
        assert!(vdd_low <= 0.95, "2.4 GHz should not need {vdd_low} V");
    }

    #[test]
    fn no_voltage_control_means_nominal_settings() {
        let cfg = factory().config().clone();
        let chip = factory().chip(5);
        let opt = ExhaustiveOptimizer::new();
        let state = chip.core(0).subsystem(SubsystemId::Decode);
        let sc = scene(state, Environment::TS);
        let (vdd, vbb) = opt.power_settings(&cfg, &sc, 3.0);
        assert_eq!((vdd, vbb), (1.0, 0.0));
    }
}
