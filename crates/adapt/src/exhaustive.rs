//! The `Exhaustive` algorithm (§4.3.1): grid search over the actuator
//! ladders. Too slow to run on-the-fly in a real processor — here it is
//! both the oracle the fuzzy controllers are trained against and the
//! `Exh-Dyn` comparison scheme of Figures 10–12.
//!
//! The search runs on the operating-point fast path: scene invariants are
//! hoisted once per query ([`SceneEval`]), thermal solves are memoized and
//! warm-started through a per-optimizer [`SolveCache`], and the frequency
//! search verifies the previous `(Vdd, Vbb)` pair's answer as a first
//! guess before falling back to bisection — adjacent ladder settings
//! almost always share their feasibility frontier within a step or two.
//
// lint:hot-path — this module is on the operating-point fast path; the
// no-alloc-in-check rule forbids Vec construction outside tests here.

use std::cell::RefCell;

use eval_core::{EvalConfig, FREQ_LADDER};
use eval_power::SolveCache;
use eval_trace::{names, Tracer};

use crate::optimizer::{Optimizer, SceneEval, SubsystemScene};

/// Exhaustive grid search over `(f, Vdd, Vbb)`.
///
/// For each `(Vdd, Vbb)` pair the feasible frequency set is an interval
/// (both the error rate and the temperature grow with `f`), so the scan
/// over the frequency ladder is a guess-verify probe seeded by the
/// previous pair's answer, falling back to binary search.
///
/// Each optimizer instance owns a [`SolveCache`]; cached values are pure
/// functions of the operating point, so sharing or not sharing an
/// instance cannot change any result — only the hit rate. The `RefCell`
/// keeps the query methods `&self`; instances are per-thread by
/// construction (one per campaign cell or training run).
#[derive(Debug, Clone, Default)]
pub struct ExhaustiveOptimizer {
    cache: RefCell<SolveCache>,
}

impl ExhaustiveOptimizer {
    /// Creates the optimizer with an empty solve cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bisects for the feasibility frontier given the invariant that `lo`
    /// is feasible and `hi` is infeasible.
    fn bisect(
        eval: &SceneEval<'_>,
        cache: &mut SolveCache,
        vdd: f64,
        vbb: f64,
        mut lo: usize,
        mut hi: usize,
    ) -> usize {
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if eval.check_at(cache, mid, vdd, vbb).is_some() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Largest feasible ladder index at fixed `(vdd, vbb)` that is at least
    /// `floor_idx`, or `None`. Exploits monotonicity: error rate and
    /// temperature both grow with `f`, so feasibility is a prefix of the
    /// ladder. `hint` (the previous pair's answer) is probed *before* the
    /// floor — a feasible hint implies the floor is feasible too, so the
    /// common case (adjacent pairs share their frontier) costs one
    /// full-precision feasible probe plus one cheap bounded rejection.
    /// Callers prune by passing the best index found so far as the floor:
    /// one infeasibility check then rejects the whole `(vdd, vbb)` setting.
    fn fmax_index_at(
        eval: &SceneEval<'_>,
        cache: &mut SolveCache,
        vdd: f64,
        vbb: f64,
        floor_idx: usize,
        hint: Option<usize>,
    ) -> Option<usize> {
        let last = FREQ_LADDER.len() - 1;
        if let Some(h) = hint {
            let h = h.clamp(floor_idx, last);
            if eval.check_at(cache, h, vdd, vbb).is_some() {
                // Feasible guess: the frontier is at or above `h`.
                if h == last || eval.check_at(cache, h + 1, vdd, vbb).is_none() {
                    return Some(h);
                }
                if eval.check_at(cache, last, vdd, vbb).is_some() {
                    return Some(last);
                }
                return Some(Self::bisect(eval, cache, vdd, vbb, h + 1, last));
            }
            // Infeasible guess: the frontier (if any) is below `h`.
            if h == floor_idx {
                return None;
            }
            eval.check_at(cache, floor_idx, vdd, vbb)?;
            return Some(Self::bisect(eval, cache, vdd, vbb, floor_idx, h));
        }
        eval.check_at(cache, floor_idx, vdd, vbb)?;
        if eval.check_at(cache, last, vdd, vbb).is_some() {
            return Some(last);
        }
        Some(Self::bisect(eval, cache, vdd, vbb, floor_idx, last))
    }

    /// [`Optimizer::freq_max`] computed with the original uncached,
    /// cold-start reference check — the "before" implementation, kept for
    /// the grid equivalence test and the hot-path benchmarks.
    pub fn freq_max_reference(&self, config: &EvalConfig, scene: &SubsystemScene<'_>) -> f64 {
        let n = FREQ_LADDER.len();
        let mut best: Option<usize> = None;
        for &vdd in scene.vdd_options() {
            for &vbb in scene.vbb_options() {
                let floor = best.map_or(0, |b| (b + 1).min(n - 1));
                let feasible =
                    |i: usize| scene.check_reference(config, FREQ_LADDER.at(i), vdd, vbb).is_some();
                if !feasible(floor) {
                    continue;
                }
                let (mut lo, mut hi) = (floor, n - 1);
                let idx = if feasible(hi) {
                    hi
                } else {
                    while hi - lo > 1 {
                        let mid = (lo + hi) / 2;
                        if feasible(mid) {
                            lo = mid;
                        } else {
                            hi = mid;
                        }
                    }
                    lo
                };
                if best.is_none_or(|b| idx > b) {
                    best = Some(idx);
                }
            }
        }
        FREQ_LADDER.at(best.unwrap_or(0))
    }
}

impl Optimizer for ExhaustiveOptimizer {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn freq_max(&self, config: &EvalConfig, scene: &SubsystemScene<'_>) -> f64 {
        let eval = SceneEval::new(config, scene);
        let cache = &mut *self.cache.borrow_mut();
        let n = FREQ_LADDER.len();
        let mut best: Option<usize> = None;
        let mut hint: Option<usize> = None;
        // Scan the supply ladder from the top: the highest Vdd usually
        // holds the highest feasible frequency, so the first pair sets a
        // `best` that rejects most remaining pairs on a single bounded
        // floor probe. The result is a max over all pairs either way —
        // scan order only affects how much work pruning saves.
        for &vdd in scene.vdd_options().iter().rev() {
            for &vbb in scene.vbb_options() {
                let floor = best.map_or(0, |b| (b + 1).min(n - 1));
                if let Some(idx) = Self::fmax_index_at(&eval, cache, vdd, vbb, floor, hint) {
                    hint = Some(idx);
                    if best.is_none_or(|b| idx > b) {
                        best = Some(idx);
                    }
                }
            }
        }
        FREQ_LADDER.at(best.unwrap_or(0))
    }

    fn power_settings(
        &self,
        config: &EvalConfig,
        scene: &SubsystemScene<'_>,
        f_core: f64,
    ) -> (f64, f64) {
        let eval = SceneEval::new(config, scene);
        let cache = &mut *self.cache.borrow_mut();
        let f_idx = FREQ_LADDER.index_of(f_core);
        let mut best: Option<(f64, f64, f64)> = None; // (power, vdd, vbb)
        for &vdd in scene.vdd_options() {
            for &vbb in scene.vbb_options() {
                let checked = match f_idx {
                    Some(i) => eval.check_at(cache, i, vdd, vbb),
                    None => eval.check_free(f_core, vdd, vbb),
                };
                if let Some((p, _t)) = checked {
                    if best.is_none_or(|(bp, _, _)| p < bp) {
                        best = Some((p, vdd, vbb));
                    }
                }
            }
        }
        match best {
            Some((_, vdd, vbb)) => (vdd, vbb),
            // Nothing feasible at f_core: fall back to the nominal setting
            // (always electrically safe) and let retuning walk the
            // frequency down. Aggressive voltages would only deepen the
            // leakage/temperature feedback that made f_core infeasible.
            None => (1.0, 0.0),
        }
    }

    fn flush_metrics(&self, tracer: Tracer<'_>) {
        let stats = self.cache.borrow_mut().take_stats();
        if stats.hits + stats.misses == 0 {
            return;
        }
        tracer.count_n(names::SOLVER_CACHE_HITS, stats.hits);
        tracer.count_n(names::SOLVER_CACHE_MISSES, stats.misses);
        tracer.count_n(names::SOLVER_ITERATIONS, stats.iterations);
        if stats.slow_convergence > 0 {
            tracer.count_n(names::SOLVER_SLOW_CONVERGENCE, stats.slow_convergence);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eval_core::{
        ChipFactory, Environment, EvalConfig, SubsystemId, VariantSelection, N_SUBSYSTEMS,
    };
    use std::sync::OnceLock;

    fn factory() -> &'static ChipFactory {
        static F: OnceLock<ChipFactory> = OnceLock::new();
        F.get_or_init(|| ChipFactory::new(EvalConfig::micro08()))
    }

    fn scene<'a>(
        state: &'a eval_core::SubsystemState,
        env: Environment,
    ) -> SubsystemScene<'a> {
        SubsystemScene {
            state,
            variants: VariantSelection::default(),
            th_c: 60.0,
            alpha_f: 0.5,
            rho: 0.6,
            pe_budget: 1e-4 / N_SUBSYSTEMS as f64,
            env,
        }
    }

    #[test]
    fn asv_raises_fmax_over_ts() {
        let cfg = factory().config().clone();
        let chip = factory().chip(1);
        let opt = ExhaustiveOptimizer::new();
        let state = chip.core(0).subsystem(SubsystemId::IntAlu);
        let f_ts = opt.freq_max(&cfg, &scene(state, Environment::TS));
        let f_asv = opt.freq_max(&cfg, &scene(state, Environment::TS_ASV));
        assert!(f_asv > f_ts, "ASV {f_asv} should beat TS {f_ts}");
    }

    #[test]
    fn fast_freq_max_matches_reference_search() {
        let cfg = factory().config().clone();
        for chip_seed in [1, 2, 3] {
            let chip = factory().chip(chip_seed);
            let opt = ExhaustiveOptimizer::new();
            for id in [SubsystemId::IntAlu, SubsystemId::Dcache, SubsystemId::IntQueue] {
                let state = chip.core(0).subsystem(id);
                for env in [Environment::TS, Environment::TS_ASV, Environment::TS_ABB_ASV] {
                    let sc = scene(state, env);
                    let fast = opt.freq_max(&cfg, &sc);
                    let reference = opt.freq_max_reference(&cfg, &sc);
                    assert_eq!(
                        fast, reference,
                        "chip {chip_seed} {id} {}: fast {fast} vs reference {reference}",
                        env.name
                    );
                }
            }
        }
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let cfg = factory().config().clone();
        let chip = factory().chip(2);
        let opt = ExhaustiveOptimizer::new();
        let state = chip.core(0).subsystem(SubsystemId::IntAlu);
        let sc = scene(state, Environment::TS_ASV);
        let f1 = opt.freq_max(&cfg, &sc);
        let after_first = opt.cache.borrow().stats();
        let f2 = opt.freq_max(&cfg, &sc);
        let after_second = opt.cache.borrow().stats();
        assert_eq!(f1, f2);
        assert_eq!(
            after_second.misses, after_first.misses,
            "second identical query must not solve anything new"
        );
        assert!(after_second.hits > after_first.hits);
    }

    #[test]
    fn freq_result_is_on_the_ladder_and_feasible() {
        let cfg = factory().config().clone();
        let chip = factory().chip(2);
        let opt = ExhaustiveOptimizer::new();
        for id in [SubsystemId::Dcache, SubsystemId::FpUnit, SubsystemId::IntQueue] {
            let state = chip.core(0).subsystem(id);
            let sc = scene(state, Environment::TS_ASV);
            let f = opt.freq_max(&cfg, &sc);
            assert!(FREQ_LADDER.contains(f), "{id}: off-ladder {f}");
            // Feasible at some voltage setting.
            let feasible = sc
                .vdd_options()
                .iter()
                .any(|&vdd| sc.check(&cfg, f, vdd, 0.0).is_some());
            assert!(feasible, "{id}: fmax {f} infeasible everywhere");
        }
    }

    #[test]
    fn power_settings_meet_constraints_when_feasible() {
        let cfg = factory().config().clone();
        let chip = factory().chip(3);
        let opt = ExhaustiveOptimizer::new();
        let state = chip.core(0).subsystem(SubsystemId::IntQueue);
        let sc = scene(state, Environment::TS_ASV);
        let fmax = opt.freq_max(&cfg, &sc);
        // At a core frequency below this subsystem's max, the power
        // algorithm must pick something feasible.
        let f_core = (fmax - 0.3).max(FREQ_LADDER.min);
        let (vdd, vbb) = opt.power_settings(&cfg, &sc, f_core);
        assert!(sc.check(&cfg, f_core, vdd, vbb).is_some());
    }

    #[test]
    fn power_algorithm_relaxes_voltage_at_lower_frequency() {
        // At a low core frequency the subsystem should not need the
        // highest supply.
        let cfg = factory().config().clone();
        let chip = factory().chip(4);
        let opt = ExhaustiveOptimizer::new();
        let state = chip.core(0).subsystem(SubsystemId::IntAlu);
        let sc = scene(state, Environment::TS_ASV);
        let (vdd_low, _) = opt.power_settings(&cfg, &sc, 2.4);
        let fmax = opt.freq_max(&cfg, &sc);
        let (vdd_high, _) = opt.power_settings(&cfg, &sc, fmax);
        assert!(
            vdd_low <= vdd_high,
            "low-f vdd {vdd_low} vs max-f vdd {vdd_high}"
        );
        assert!(vdd_low <= 0.95, "2.4 GHz should not need {vdd_low} V");
    }

    #[test]
    fn no_voltage_control_means_nominal_settings() {
        let cfg = factory().config().clone();
        let chip = factory().chip(5);
        let opt = ExhaustiveOptimizer::new();
        let state = chip.core(0).subsystem(SubsystemId::Decode);
        let sc = scene(state, Environment::TS);
        let (vdd, vbb) = opt.power_settings(&cfg, &sc, 3.0);
        assert_eq!((vdd, vbb), (1.0, 0.0));
    }
}
