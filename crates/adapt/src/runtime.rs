//! The deployed controller system (§4.3.2–4.3.3): a phase detector watches
//! the committed instruction stream; new phases trigger the measurement
//! window and the controller routines; recurring phases reuse their saved
//! configuration ("if this phase has been seen before, a saved
//! configuration is reused").

use std::collections::BTreeMap;

use eval_core::{CoreModel, Environment, EvalConfig};
use eval_trace::{names, Event, Tracer};
use eval_uarch::profile::PhaseProfile;
use eval_uarch::{PhaseDetector, WorkloadClass};

use crate::controller::{decide_phase_traced, AdaptationTimeline, DecisionContext, PhaseDecision};
use crate::optimizer::Optimizer;
use crate::retune::Outcome;

/// Bookkeeping of a running adaptive system.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RuntimeStats {
    /// Controller invocations (new phases).
    pub controller_runs: u64,
    /// Saved-configuration reuses (recurring phases).
    pub config_reuses: u64,
    /// Instructions observed.
    pub instructions: u64,
    /// Controller decisions by retuning outcome, indexed by
    /// [`Outcome::index`] (Figure 13's five outcomes).
    pub decisions_by_outcome: [u64; 5],
    /// Controller decisions by optimizer scheme label
    /// ([`Optimizer::name`]).
    pub decisions_by_scheme: BTreeMap<&'static str, u64>,
}

impl RuntimeStats {
    /// Fraction of completed detection intervals served from the
    /// configuration cache (0 when no interval has completed).
    pub fn config_cache_hit_rate(&self) -> f64 {
        let total = self.controller_runs + self.config_reuses;
        if total == 0 {
            0.0
        } else {
            self.config_reuses as f64 / total as f64
        }
    }

    /// Decisions whose retuning ended in `outcome`.
    pub fn decisions_with_outcome(&self, outcome: Outcome) -> u64 {
        self.decisions_by_outcome[outcome.index()]
    }
}

/// What the system did in response to one observed instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeEvent {
    /// A new phase was detected; the controller ran and produced this
    /// configuration (also now active).
    Adapted(PhaseDecision),
    /// A known phase recurred; its saved configuration was reactivated.
    Reused(PhaseDecision),
}

/// The runtime adaptation loop for one core: detector + controller +
/// configuration cache.
pub struct AdaptiveSystem<'a> {
    config: &'a EvalConfig,
    core: &'a CoreModel,
    optimizer: &'a dyn Optimizer,
    env: Environment,
    class: WorkloadClass,
    rp_cycles: f64,
    detector: PhaseDetector,
    timeline: AdaptationTimeline,
    // BTreeMap, not HashMap: iteration order must not depend on hasher
    // seeds anywhere on the simulation path (eval-lint: determinism).
    saved: BTreeMap<u32, PhaseDecision>,
    active: Option<PhaseDecision>,
    stats: RuntimeStats,
    overhead_us: f64,
    tracer: Tracer<'a>,
}

impl<'a> AdaptiveSystem<'a> {
    /// Creates the system with the evaluation's detector settings.
    pub fn new(
        config: &'a EvalConfig,
        core: &'a CoreModel,
        optimizer: &'a dyn Optimizer,
        env: Environment,
        class: WorkloadClass,
        rp_cycles: f64,
    ) -> Self {
        Self {
            config,
            core,
            optimizer,
            env,
            class,
            rp_cycles,
            detector: PhaseDetector::micro08(),
            timeline: AdaptationTimeline::micro08(),
            saved: BTreeMap::new(),
            active: None,
            stats: RuntimeStats::default(),
            overhead_us: 0.0,
            tracer: Tracer::noop(),
        }
    }

    /// Replaces the phase detector (e.g. shorter intervals for tests).
    pub fn with_detector(mut self, detector: PhaseDetector) -> Self {
        self.detector = detector;
        self
    }

    /// Attaches a tracer: phase detections, cache hit/miss counters and
    /// full controller-decision events flow into it.
    pub fn with_tracer(mut self, tracer: Tracer<'a>) -> Self {
        self.tracer = tracer;
        self
    }

    /// Observes one committed instruction's basic-block id. When a
    /// detection interval completes, either runs the controller (new
    /// phase; `measure` is called to model the counter window producing
    /// the phase's profile) or reuses the saved configuration.
    pub fn observe<F: FnOnce() -> PhaseProfile>(
        &mut self,
        bb_id: u32,
        measure: F,
    ) -> Option<RuntimeEvent> {
        self.stats.instructions += 1;
        let event = self.detector.observe(bb_id)?;
        if let Some(saved) = self.saved.get(&event.id.0) {
            // Known phase: reactivate at transition cost only.
            self.stats.config_reuses += 1;
            self.tracer.count(names::CACHE_HIT);
            self.tracer.event(|| Event::PhaseDetected {
                phase_id: event.id.0,
                recurring: true,
            });
            self.overhead_us +=
                self.timeline.overhead_fraction_reuse() * self.timeline.phase_length_us;
            self.active = Some(saved.clone());
            return Some(RuntimeEvent::Reused(saved.clone()));
        }
        // New phase: measure, run the controller routines, save.
        self.tracer.count(names::CACHE_MISS);
        self.tracer.event(|| Event::PhaseDetected {
            phase_id: event.id.0,
            recurring: false,
        });
        let profile = measure();
        let ctx = DecisionContext {
            scheme: self.optimizer.name(),
            workload: "runtime",
            phase: u64::from(event.id.0),
        };
        let decision = decide_phase_traced(
            self.config,
            self.core,
            self.optimizer,
            self.env,
            &profile,
            self.class,
            self.rp_cycles,
            self.config.th_c,
            &ctx,
            self.tracer,
        );
        self.stats.controller_runs += 1;
        self.stats.decisions_by_outcome[decision.outcome.index()] += 1;
        *self
            .stats
            .decisions_by_scheme
            .entry(self.optimizer.name())
            .or_insert(0) += 1;
        self.overhead_us +=
            self.timeline.overhead_fraction(decision.retune_steps) * self.timeline.phase_length_us;
        self.saved.insert(event.id.0, decision.clone());
        self.active = Some(decision.clone());
        Some(RuntimeEvent::Adapted(decision))
    }

    /// The configuration currently applied to the core, if any phase has
    /// completed yet.
    pub fn active(&self) -> Option<&PhaseDecision> {
        self.active.as_ref()
    }

    /// Counters.
    pub fn stats(&self) -> RuntimeStats {
        self.stats.clone()
    }

    /// Total microseconds of application time spent on adaptation.
    pub fn overhead_us(&self) -> f64 {
        self.overhead_us
    }

    /// Distinct phases seen by the detector.
    pub fn phases_seen(&self) -> usize {
        self.detector.phases_seen()
    }
}

impl std::fmt::Debug for AdaptiveSystem<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveSystem")
            .field("env", &self.env.name)
            .field("stats", &self.stats)
            .field("phases_seen", &self.detector.phases_seen())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveOptimizer;
    use eval_core::ChipFactory;
    use eval_uarch::{profile_workload, TraceGenerator, Workload};
    use std::sync::OnceLock;

    fn factory() -> &'static ChipFactory {
        static F: OnceLock<ChipFactory> = OnceLock::new();
        F.get_or_init(|| ChipFactory::new(EvalConfig::micro08()))
    }

    #[test]
    fn controller_runs_once_per_distinct_phase_then_reuses() {
        let cfg = factory().config().clone();
        let chip = factory().chip(9);
        let w = Workload::by_name("gzip").expect("exists");
        let profile = profile_workload(&w, 4_000, 9);
        let oracle = ExhaustiveOptimizer::new();
        let mut system = AdaptiveSystem::new(
            &cfg,
            chip.core(0),
            &oracle,
            Environment::TS_ASV,
            w.class,
            profile.rp_cycles,
        )
        .with_detector(PhaseDetector::new(5_000, 150));

        let mut current_phase = 0usize;
        let mut seen = 0u64;
        for insn in TraceGenerator::new(&w, 9) {
            seen += 1;
            let mut consumed = 0;
            for (i, p) in w.phases.iter().enumerate() {
                consumed += p.instructions;
                if seen <= consumed {
                    current_phase = i;
                    break;
                }
            }
            let ph = profile.phases[current_phase].clone();
            system.observe(insn.bb_id, move || ph);
        }
        let stats = system.stats();
        assert!(stats.controller_runs >= 2, "both phases must adapt");
        assert!(
            stats.controller_runs <= 4,
            "runs ({}) should track distinct phases, not intervals",
            stats.controller_runs
        );
        assert!(
            stats.config_reuses > stats.controller_runs,
            "stable phases should mostly reuse ({} vs {})",
            stats.config_reuses,
            stats.controller_runs
        );
        assert!(system.active().is_some());
        // Overhead is microscopic relative to execution (Figure 6's point).
        assert!(system.overhead_us() < 1_000.0);
    }

    #[test]
    fn stats_track_cache_hit_rate_scheme_counts_and_trace_counters() {
        let cfg = factory().config().clone();
        let chip = factory().chip(9);
        let w = Workload::by_name("gzip").expect("exists");
        let profile = profile_workload(&w, 4_000, 9);
        let oracle = ExhaustiveOptimizer::new();
        let collector = eval_trace::Collector::new();
        let mut system = AdaptiveSystem::new(
            &cfg,
            chip.core(0),
            &oracle,
            Environment::TS_ASV,
            w.class,
            profile.rp_cycles,
        )
        .with_detector(PhaseDetector::new(5_000, 150))
        .with_tracer(eval_trace::Tracer::new(&collector));

        let ph = profile.phases[0].clone();
        for i in 0..30_000u32 {
            let ph2 = ph.clone();
            system.observe(100 + i % 8, move || ph2);
        }
        let stats = system.stats();
        assert!(stats.controller_runs >= 1);
        assert!(stats.config_reuses >= 1);
        // Hit rate is reuses / completed intervals, and matches the
        // cache.hit / cache.miss trace counters exactly.
        let expected =
            stats.config_reuses as f64 / (stats.controller_runs + stats.config_reuses) as f64;
        assert!((stats.config_cache_hit_rate() - expected).abs() < 1e-12);
        assert!(stats.config_cache_hit_rate() > 0.5, "stable phase should mostly hit");
        let reg = collector.registry();
        assert_eq!(reg.counter("cache.hit"), stats.config_reuses);
        assert_eq!(reg.counter("cache.miss"), stats.controller_runs);
        // Per-scheme decision counts attribute every controller run.
        assert_eq!(
            stats.decisions_by_scheme.get("exhaustive").copied(),
            Some(stats.controller_runs)
        );
        // Outcome counts cover every controller run.
        assert_eq!(
            stats.decisions_by_outcome.iter().sum::<u64>(),
            stats.controller_runs
        );
        assert_eq!(
            stats.decisions_with_outcome(Outcome::NoChange),
            stats.decisions_by_outcome[0]
        );
        // One phase-detected event per completed interval.
        let detections = collector
            .events()
            .iter()
            .filter(|e| matches!(e, Event::PhaseDetected { .. }))
            .count() as u64;
        assert_eq!(detections, stats.controller_runs + stats.config_reuses);
    }

    #[test]
    fn empty_stats_report_zero_hit_rate() {
        let stats = RuntimeStats::default();
        assert_eq!(stats.config_cache_hit_rate(), 0.0);
        assert!(stats.decisions_by_scheme.is_empty());
    }

    #[test]
    fn reused_configuration_is_identical_to_the_saved_one() {
        let cfg = factory().config().clone();
        let chip = factory().chip(10);
        let w = Workload::by_name("mesa").expect("exists");
        let profile = profile_workload(&w, 4_000, 10);
        let oracle = ExhaustiveOptimizer::new();
        let mut system = AdaptiveSystem::new(
            &cfg,
            chip.core(0),
            &oracle,
            Environment::TS,
            w.class,
            profile.rp_cycles,
        )
        .with_detector(PhaseDetector::new(2_000, 150));

        let ph = profile.phases[0].clone();
        let mut first: Option<PhaseDecision> = None;
        // Constant behaviour: one phase, repeatedly.
        for i in 0..20_000u32 {
            let ph2 = ph.clone();
            match system.observe(100 + i % 8, move || ph2) {
                Some(RuntimeEvent::Adapted(d)) => {
                    assert!(first.is_none(), "only one adaptation expected");
                    first = Some(d);
                }
                Some(RuntimeEvent::Reused(d)) => {
                    assert_eq!(Some(&d), first.as_ref(), "reuse must be verbatim");
                }
                None => {}
            }
        }
        assert!(first.is_some());
    }
}
