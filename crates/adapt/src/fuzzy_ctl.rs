//! The fuzzy-controller implementation of the `Freq`/`Power` algorithms
//! (§4.3.1): per-subsystem controllers trained against the exhaustive
//! oracle at "manufacturing test" time, then deployed as the runtime
//! optimizer.
//!
//! Per the paper there is one `Freq` controller per subsystem and two
//! `Power` controllers (for `Vdd` and `Vbb`). Subsystems with structure
//! variants (replicated FUs, resizable queues) get a controller per
//! variant — the variant changes both the timing model and `Kdyn`, so it
//! is part of the function being learned.
//!
//! Of the paper's six inputs, `Rth`, `Kdyn`, `Ksta` and `Vt0` are constants
//! for a given subsystem on a given chip, so the trained controllers take
//! the inputs that actually vary at run time: the sensed heat-sink
//! temperature, the counter-measured activity factor and exercise rate,
//! and (for the `Power` controllers) the core frequency.

use eval_core::{
    ChipModel, Environment, EvalConfig, FuChoice, QueueChoice, SubsystemId, VariantSelection,
    FREQ_LADDER, N_SUBSYSTEMS, VBB_LADDER, VDD_LADDER,
};
use eval_fuzzy::{FuzzyController, Normalizer, TrainingConfig};
use eval_rng::ChaCha12Rng;

use crate::exhaustive::ExhaustiveOptimizer;
use crate::optimizer::{Optimizer, SubsystemScene};

/// How much offline training to give each fuzzy controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingBudget {
    /// Training examples per controller. The paper uses 10 000 with 25
    /// rules; the default here is smaller because training happens per
    /// chip inside the experiment loop, and accuracy saturates well below
    /// the paper's budget on the three-to-four input functions involved.
    pub examples: usize,
    /// Rule count / learning rate / epochs.
    pub config: TrainingConfig,
    /// RNG seed for example sampling and initialization.
    pub seed: u64,
}

impl Default for TrainingBudget {
    fn default() -> Self {
        Self {
            examples: 260,
            config: TrainingConfig::micro08(),
            seed: 0xF022,
        }
    }
}

/// One trained controller with its input/output normalization.
#[derive(Debug, Clone)]
struct Trained {
    norm: Normalizer,
    fc: FuzzyController,
}

impl Trained {
    fn infer(&self, raw: &[f64]) -> f64 {
        let x = self.norm.normalize(raw);
        self.norm.denormalize_output(self.fc.infer(&x))
    }
}

/// Controllers for one (subsystem, variant) pair.
#[derive(Debug, Clone)]
struct SubsystemControllers {
    freq: Trained,
    vdd: Trained,
    vbb: Trained,
}

/// The deployable fuzzy optimizer for one core in one environment.
#[derive(Debug, Clone)]
pub struct FuzzyOptimizer {
    env: Environment,
    /// `[subsystem][variant_enabled]`; the variant slot is `None` for
    /// subsystems without an alternate structure.
    controllers: Vec<[Option<SubsystemControllers>; 2]>,
}

/// Sensed-input ranges used to sample training scenes.
const TH_RANGE: (f64, f64) = (45.0, 72.0);
const ALPHA_RANGE: (f64, f64) = (0.0, 1.0);
const RHO_RANGE: (f64, f64) = (0.0, 2.5);

fn variant_selection_for(id: SubsystemId, alt: bool) -> VariantSelection {
    let mut v = VariantSelection::default();
    if alt {
        match id {
            SubsystemId::IntAlu => v.int_fu = FuChoice::LowSlope,
            SubsystemId::FpUnit => v.fp_fu = FuChoice::LowSlope,
            SubsystemId::IntQueue => v.int_queue = QueueChoice::Small,
            SubsystemId::FpQueue => v.fp_queue = QueueChoice::Small,
            _ => {}
        }
    }
    v
}

fn has_variant(id: SubsystemId) -> bool {
    id.is_replicable_fu() || id.is_issue_queue()
}

impl FuzzyOptimizer {
    /// Trains the per-subsystem controllers for `core` under `env` by
    /// querying the exhaustive oracle on randomly sampled sensed inputs
    /// (heat-sink temperature, activity, exercise rate, core frequency).
    ///
    /// This models the manufacturer-site training of §4.3.1; it is the
    /// expensive step (seconds per core), after which deployment queries
    /// cost microseconds.
    pub fn train(
        config: &EvalConfig,
        chip: &ChipModel,
        core_index: usize,
        env: Environment,
        budget: &TrainingBudget,
    ) -> Self {
        Self::train_traced(config, chip, core_index, env, budget, eval_trace::Tracer::noop())
    }

    /// [`FuzzyOptimizer::train`] under a `train` span, emitting one
    /// [`ControllerTrained`](eval_trace::Event::ControllerTrained) event
    /// per (subsystem, variant) bank with the `Freq` controller's RMS
    /// error on its normalized training set.
    pub fn train_traced(
        config: &EvalConfig,
        chip: &ChipModel,
        core_index: usize,
        env: Environment,
        budget: &TrainingBudget,
        tracer: eval_trace::Tracer<'_>,
    ) -> Self {
        let _span = tracer.span("train");
        let oracle = ExhaustiveOptimizer::new();
        let core = chip.core(core_index);
        let pe_budget = config.constraints.pe_budget_per_subsystem(N_SUBSYSTEMS);
        let mut rng = ChaCha12Rng::seed_from_u64(budget.seed ^ chip.seed());

        let mut controllers = Vec::with_capacity(N_SUBSYSTEMS);
        for id in SubsystemId::ALL {
            let state = core.subsystem(id);
            let variants: &[bool] = if has_variant(id) && (env.fu_replication || env.queue) {
                &[false, true]
            } else {
                &[false]
            };
            let mut slot: [Option<SubsystemControllers>; 2] = [None, None];
            for &alt in variants {
                let vsel = variant_selection_for(id, alt);
                let mut freq_ex = Vec::with_capacity(budget.examples);
                let mut vdd_ex = Vec::with_capacity(budget.examples);
                let mut vbb_ex = Vec::with_capacity(budget.examples);
                for _ in 0..budget.examples {
                    let th = rng.gen_range(TH_RANGE.0..TH_RANGE.1);
                    let alpha = rng.gen_range(ALPHA_RANGE.0..ALPHA_RANGE.1);
                    let rho = rng.gen_range(RHO_RANGE.0..RHO_RANGE.1).max(1e-3);
                    let scene = SubsystemScene {
                        state,
                        variants: vsel,
                        th_c: th,
                        alpha_f: alpha,
                        rho,
                        pe_budget,
                        env,
                    };
                    let fmax = oracle.freq_max(config, &scene);
                    freq_ex.push((vec![th, alpha, rho], fmax));
                    let f_core = rng.gen_range(FREQ_LADDER.min..=fmax.max(FREQ_LADDER.min));
                    let (vdd, vbb) = oracle.power_settings(config, &scene, f_core);
                    vdd_ex.push((vec![th, alpha, rho, f_core], vdd));
                    vbb_ex.push((vec![th, alpha, rho, f_core], vbb));
                }
                let train_one = |examples: &[(Vec<f64>, f64)], salt: u64| -> (Trained, f64) {
                    let norm = Normalizer::fit(examples);
                    let normalized = norm.apply(examples);
                    let fc = FuzzyController::train(
                        &normalized,
                        &budget.config,
                        budget.seed ^ salt ^ (id.index() as u64) << 8,
                    )
                    // lint:allow(panic-safety): TrainingBudget::default
                    // sizes the example set well above the rule count, and
                    // train() only fails when it is smaller.
                    .expect("training set is larger than the rule count");
                    let rms = if tracer.enabled() {
                        fc.rms_error(&normalized)
                    } else {
                        0.0
                    };
                    (Trained { norm, fc }, rms)
                };
                let (freq, freq_rms) = train_one(&freq_ex, 0x11);
                let (vdd, _) = train_one(&vdd_ex, 0x22);
                let (vbb, _) = train_one(&vbb_ex, 0x33);
                tracer.count(eval_trace::names::FUZZY_CONTROLLERS_TRAINED);
                tracer.event(|| eval_trace::Event::ControllerTrained {
                    subsystem: id.to_string(),
                    variant: if alt { "alt" } else { "normal" },
                    examples: budget.examples as u64,
                    freq_rms,
                });
                slot[alt as usize] = Some(SubsystemControllers { freq, vdd, vbb });
            }
            controllers.push(slot);
        }
        // Metrics only (never golden event lines): oracle cache counters
        // accumulated across the whole training sweep.
        oracle.flush_metrics(tracer);
        Self { env, controllers }
    }

    /// The environment these controllers were trained for.
    pub fn environment(&self) -> Environment {
        self.env
    }

    fn lookup(&self, scene: &SubsystemScene<'_>) -> &SubsystemControllers {
        let id = scene.state.id();
        let alt = match id {
            SubsystemId::IntAlu => scene.variants.int_fu == FuChoice::LowSlope,
            SubsystemId::FpUnit => scene.variants.fp_fu == FuChoice::LowSlope,
            SubsystemId::IntQueue => scene.variants.int_queue == QueueChoice::Small,
            SubsystemId::FpQueue => scene.variants.fp_queue == QueueChoice::Small,
            _ => false,
        };
        self.controllers[id.index()][alt as usize]
            .as_ref()
            .or(self.controllers[id.index()][0].as_ref())
            // lint:allow(panic-safety): the constructor trains slot 0 for
            // every subsystem id before FuzzyOptimizer is handed out.
            .expect("controller trained for every subsystem")
    }
}

impl Optimizer for FuzzyOptimizer {
    fn name(&self) -> &'static str {
        "fuzzy"
    }

    fn freq_max(&self, _config: &EvalConfig, scene: &SubsystemScene<'_>) -> f64 {
        let t = self.lookup(scene);
        let raw = t.freq.infer(&[scene.th_c, scene.alpha_f, scene.rho]);
        FREQ_LADDER.nearest(raw)
    }

    fn power_settings(
        &self,
        _config: &EvalConfig,
        scene: &SubsystemScene<'_>,
        f_core: f64,
    ) -> (f64, f64) {
        let t = self.lookup(scene);
        let inputs = [scene.th_c, scene.alpha_f, scene.rho, f_core];
        let vdd = if scene.env.asv {
            VDD_LADDER.nearest(t.vdd.infer(&inputs))
        } else {
            1.0
        };
        let vbb = if scene.env.abb {
            VBB_LADDER.nearest(t.vbb.infer(&inputs))
        } else {
            0.0
        };
        (vdd, vbb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eval_core::ChipFactory;
    use std::sync::OnceLock;

    fn factory() -> &'static ChipFactory {
        static F: OnceLock<ChipFactory> = OnceLock::new();
        F.get_or_init(|| ChipFactory::new(EvalConfig::micro08()))
    }

    fn small_budget() -> TrainingBudget {
        TrainingBudget {
            examples: 160,
            config: TrainingConfig {
                epochs: 3,
                ..TrainingConfig::micro08()
            },
            seed: 7,
        }
    }

    #[test]
    fn fuzzy_tracks_exhaustive_frequency_within_a_few_steps() {
        let cfg = factory().config().clone();
        let chip = factory().chip(1);
        let fuzzy = FuzzyOptimizer::train(&cfg, &chip, 0, Environment::TS_ASV, &small_budget());
        let oracle = ExhaustiveOptimizer::new();
        let pe_budget = cfg.constraints.pe_budget_per_subsystem(N_SUBSYSTEMS);
        let mut worst = 0.0f64;
        let mut rng = ChaCha12Rng::seed_from_u64(99);
        for _ in 0..20 {
            let id = SubsystemId::from_index(rng.gen_range(0..N_SUBSYSTEMS));
            let scene = SubsystemScene {
                state: chip.core(0).subsystem(id),
                variants: VariantSelection::default(),
                th_c: rng.gen_range(50.0..68.0),
                alpha_f: rng.gen_range(0.1..0.9),
                rho: rng.gen_range(0.1..2.0),
                pe_budget,
                env: Environment::TS_ASV,
            };
            let f_fuzzy = fuzzy.freq_max(&cfg, &scene);
            let f_exh = oracle.freq_max(&cfg, &scene);
            worst = worst.max((f_fuzzy - f_exh).abs());
        }
        // Paper (Table 2): mean frequency errors are a few percent of
        // nominal; allow the worst case a few ladder steps.
        assert!(worst <= 0.65, "worst fuzzy-vs-exhaustive gap {worst} GHz");
    }

    #[test]
    fn outputs_land_on_ladders() {
        let cfg = factory().config().clone();
        let chip = factory().chip(2);
        let fuzzy =
            FuzzyOptimizer::train(&cfg, &chip, 0, Environment::TS_ABB_ASV, &small_budget());
        let scene = SubsystemScene {
            state: chip.core(0).subsystem(SubsystemId::Dcache),
            variants: VariantSelection::default(),
            th_c: 60.0,
            alpha_f: 0.4,
            rho: 0.5,
            pe_budget: cfg.constraints.pe_budget_per_subsystem(N_SUBSYSTEMS),
            env: Environment::TS_ABB_ASV,
        };
        let f = fuzzy.freq_max(&cfg, &scene);
        assert!(FREQ_LADDER.contains(f));
        let (vdd, vbb) = fuzzy.power_settings(&cfg, &scene, f);
        assert!(VDD_LADDER.contains(vdd));
        assert!(VBB_LADDER.contains(vbb));
    }

    #[test]
    fn variant_controllers_differ_for_replicated_fus() {
        let cfg = factory().config().clone();
        let chip = factory().chip(3);
        let fuzzy =
            FuzzyOptimizer::train(&cfg, &chip, 0, Environment::TS_ASV_Q_FU, &small_budget());
        let pe_budget = cfg.constraints.pe_budget_per_subsystem(N_SUBSYSTEMS);
        let mk = |fu: FuChoice| SubsystemScene {
            state: chip.core(0).subsystem(SubsystemId::IntAlu),
            variants: VariantSelection {
                int_fu: fu,
                ..VariantSelection::default()
            },
            th_c: 58.0,
            alpha_f: 0.6,
            rho: 0.8,
            pe_budget,
            env: Environment::TS_ASV_Q_FU,
        };
        // The variant is part of the learned function: each (subsystem,
        // variant) pair has its own controller, and each must track the
        // exhaustive oracle for *its* variant. (Whether low-slope beats
        // normal at any given scene is chip-dependent — tilt trades mean
        // delay for variance — so that is not asserted.) Averaged over a
        // grid of scenes, the per-variant tracking error should stay
        // within a couple of ladder steps.
        let oracle = ExhaustiveOptimizer::new();
        let mut err = [0.0f64; 2];
        let mut diverged = false;
        let mut scenes = 0u32;
        for th in [50.0, 58.0, 66.0] {
            for alpha in [0.3, 0.6, 0.9] {
                for rho in [0.4, 0.8, 1.6] {
                    let at = |fu: FuChoice| {
                        let mut s = mk(fu);
                        s.th_c = th;
                        s.alpha_f = alpha;
                        s.rho = rho;
                        (fuzzy.freq_max(&cfg, &s), oracle.freq_max(&cfg, &s))
                    };
                    let (f_normal, o_normal) = at(FuChoice::Normal);
                    let (f_low, o_low) = at(FuChoice::LowSlope);
                    err[0] += (f_normal - o_normal).abs();
                    err[1] += (f_low - o_low).abs();
                    diverged |= f_normal != f_low;
                    scenes += 1;
                }
            }
        }
        let mean_err_normal = err[0] / scenes as f64;
        let mean_err_low = err[1] / scenes as f64;
        assert!(
            mean_err_normal <= 0.3 && mean_err_low <= 0.3,
            "mean tracking error: normal {mean_err_normal} GHz, low-slope {mean_err_low} GHz"
        );
        assert!(diverged, "variant controllers never disagreed — not variant-specific");
    }
}
