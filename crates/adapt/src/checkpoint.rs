//! Chip-level campaign checkpointing.
//!
//! After each chip's buffered records are committed to the trace sink,
//! the campaign appends one compact record to a sidecar `*.ckpt.jsonl`
//! file: the chip index, its RNG stream seed, the merged per-cell
//! results (f64s as raw bit patterns, so resume is bit-exact), and the
//! chip's metric contributions. A header line carries a fingerprint of
//! the campaign configuration plus the requested environment/scheme
//! sets; resume refuses a sidecar whose fingerprint does not match.
//!
//! The sidecar is append-only and flushed per record, and the campaign
//! appends a chip's checkpoint record only *after* replaying that chip's
//! trace records, so at any crash point the trace file is at most one
//! chip ahead of the sidecar — never behind. The resume path truncates
//! the trace back to the sidecar's committed frontier, replays the
//! checkpointed metric state, and re-runs only the remaining chips,
//! producing a merged [`crate::CampaignResult`] bit-identical to an
//! uninterrupted run.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use eval_trace::json::{array, push_str_literal, Json, JsonObject};
use eval_trace::provenance::{self, fnv1a64, Provenance};
use eval_trace::{MetricUpdate, Record};

use crate::campaign::{Campaign, CellResult, OutcomeCounts, Scheme};
use eval_core::Environment;

/// Sidecar format version (the `version` field of the header line).
const VERSION: u64 = 1;

/// Where the campaign checkpoints to, and whether to resume from it.
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Sidecar path (conventionally `<trace>.ckpt.jsonl`).
    pub path: PathBuf,
    /// Resume from an existing sidecar instead of starting fresh. A
    /// missing sidecar is not an error — the run starts from chip 0 —
    /// so drivers can pass `--resume` unconditionally.
    pub resume: bool,
}

impl CheckpointOptions {
    /// Checkpoint to `path`, starting fresh.
    pub fn fresh(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            resume: false,
        }
    }

    /// Checkpoint to `path`, resuming from it when it exists.
    pub fn resuming(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            resume: true,
        }
    }
}

/// A checkpoint could not be written, read, or trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The sidecar was written by a differently-configured campaign;
    /// resuming would merge incompatible chips.
    FingerprintMismatch {
        /// Fingerprint of the campaign requesting the resume.
        expected: u64,
        /// Fingerprint recorded in the sidecar header.
        found: u64,
    },
    /// A sidecar line (other than a torn final line) failed to parse or
    /// violated the record structure.
    Corrupt {
        /// 1-based line number within the sidecar.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// An I/O failure on the sidecar (message keeps the error clonable).
    Io {
        /// The sidecar path.
        path: String,
        /// Rendered `std::io::Error`.
        message: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint mismatch: campaign is {expected:016x}, \
                 sidecar was written by {found:016x}"
            ),
            CheckpointError::Corrupt { line, message } => {
                write!(f, "corrupt checkpoint at line {line}: {message}")
            }
            CheckpointError::Io { path, message } => {
                write!(f, "checkpoint I/O error on {path}: {message}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

fn io_err(path: &Path, err: &std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.display().to_string(),
        message: err.to_string(),
    }
}

/// FNV-1a 64-bit over a canonical rendering of everything that shapes a
/// chip's results: the campaign configuration (config, chip count, base
/// seed, profile budget, workload list, training budget, cores per
/// chip) and the requested environment/scheme sets. Execution-only knobs
/// (`threads`, `fail_chip`) are deliberately excluded — they do not
/// change results, so a resume may use a different thread count.
pub fn fingerprint(campaign: &Campaign, envs: &[Environment], schemes: &[Scheme]) -> u64 {
    let mut canon = String::new();
    let _ = write!(
        canon,
        "config={:?};chips={};base_seed={};profile_budget={};cores_per_chip={};training={:?};",
        campaign.config,
        campaign.chips,
        campaign.base_seed,
        campaign.profile_budget,
        campaign.cores_per_chip,
        campaign.training,
    );
    let _ = write!(canon, "workloads=[");
    for w in &campaign.workloads {
        let _ = write!(canon, "{},", w.name);
    }
    let _ = write!(canon, "];envs=[");
    for e in envs {
        let _ = write!(canon, "{:?},", e);
    }
    let _ = write!(canon, "];schemes=[");
    for s in schemes {
        let _ = write!(canon, "{},", s.trace_label());
    }
    let _ = write!(canon, "];");
    fnv1a64(canon.as_bytes())
}

/// One chip's metric contribution, captured from its buffered records at
/// commit time. Counters sum, gauges keep the last value, histogram
/// observations keep per-name order (f64 addition order determines the
/// bit pattern of the histogram sum, so replay must preserve it).
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct CapturedMetrics {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub observes: Vec<(String, Vec<f64>)>,
}

/// Extracts the metric state of one chip from its drained records.
pub(crate) fn capture_metrics(records: &[Record]) -> CapturedMetrics {
    let mut counters: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    let mut gauges: std::collections::BTreeMap<&str, f64> = std::collections::BTreeMap::new();
    let mut observes: std::collections::BTreeMap<&str, Vec<f64>> =
        std::collections::BTreeMap::new();
    for rec in records {
        if let Record::Metric(update) = rec {
            match update {
                MetricUpdate::CounterAdd(name, n) => {
                    *counters.entry(name.as_ref()).or_insert(0) += n;
                }
                MetricUpdate::GaugeSet(name, v) => {
                    gauges.insert(name.as_ref(), *v);
                }
                MetricUpdate::Observe(name, v) => {
                    observes.entry(name.as_ref()).or_default().push(*v);
                }
            }
        }
    }
    CapturedMetrics {
        counters: counters
            .into_iter()
            .map(|(n, v)| (n.to_string(), v))
            .collect(),
        gauges: gauges.into_iter().map(|(n, v)| (n.to_string(), v)).collect(),
        observes: observes
            .into_iter()
            .map(|(n, vs)| (n.to_string(), vs))
            .collect(),
    }
}

impl CapturedMetrics {
    /// The captured state as replayable updates (owned names). Counter /
    /// gauge order across names is irrelevant (the registry is keyed);
    /// per-name observation order is preserved.
    pub(crate) fn to_updates(&self) -> Vec<Record> {
        let mut out = Vec::new();
        for (name, v) in &self.counters {
            out.push(Record::Metric(MetricUpdate::CounterAdd(
                name.clone().into(),
                *v,
            )));
        }
        for (name, v) in &self.gauges {
            out.push(Record::Metric(MetricUpdate::GaugeSet(
                name.clone().into(),
                *v,
            )));
        }
        for (name, vs) in &self.observes {
            for v in vs {
                out.push(Record::Metric(MetricUpdate::Observe(
                    name.clone().into(),
                    *v,
                )));
            }
        }
        out
    }
}

/// A committed chip as persisted in (and restored from) the sidecar.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ChipRecord {
    pub chip: usize,
    pub seed: u64,
    pub outcome: RecordedOutcome,
    pub metrics: CapturedMetrics,
}

/// The persisted half of a chip outcome.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum RecordedOutcome {
    Ok {
        baseline: CellResult,
        cells: Vec<CellResult>,
    },
    Failed {
        error: String,
    },
}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64_hex(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn render_cell(cell: &CellResult) -> String {
    JsonObject::new()
        .str("freq", &f64_hex(cell.freq_rel))
        .str("perf", &f64_hex(cell.perf_rel))
        .str("power", &f64_hex(cell.power_w))
        .raw(
            "outcomes",
            &eval_trace::json::u64_array(&cell.outcomes.as_array()),
        )
        .finish()
}

fn render_pairs_u64(pairs: &[(String, u64)]) -> String {
    array(pairs, |(name, v)| {
        let mut s = String::from("[");
        push_str_literal(&mut s, name);
        let _ = write!(s, ",{v}]");
        s
    })
}

fn render_pairs_hex(pairs: &[(String, f64)]) -> String {
    array(pairs, |(name, v)| {
        let mut s = String::from("[");
        push_str_literal(&mut s, name);
        s.push(',');
        push_str_literal(&mut s, &f64_hex(*v));
        s.push(']');
        s
    })
}

fn render_observes(pairs: &[(String, Vec<f64>)]) -> String {
    array(pairs, |(name, vs)| {
        let mut s = String::from("[");
        push_str_literal(&mut s, name);
        s.push_str(",[");
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_str_literal(&mut s, &f64_hex(*v));
        }
        s.push_str("]]");
        s
    })
}

fn render_record(rec: &ChipRecord) -> String {
    let mut obj = JsonObject::new()
        .str("kind", "chip")
        .u64("chip", rec.chip as u64)
        .u64("seed", rec.seed);
    match &rec.outcome {
        RecordedOutcome::Ok { baseline, cells } => {
            obj = obj
                .str("status", "ok")
                .raw("baseline", &render_cell(baseline))
                .raw("cells", &array(cells, render_cell));
        }
        RecordedOutcome::Failed { error } => {
            obj = obj.str("status", "failed").str("error", error);
        }
    }
    obj.raw("counters", &render_pairs_u64(&rec.metrics.counters))
        .raw("gauges", &render_pairs_hex(&rec.metrics.gauges))
        .raw("observes", &render_observes(&rec.metrics.observes))
        .finish()
}

fn cell_from_json(v: &Json) -> Option<CellResult> {
    let outcomes_json = v.get("outcomes")?.as_arr()?;
    if outcomes_json.len() != 5 {
        return None;
    }
    let mut outcomes = [0u64; 5];
    for (slot, item) in outcomes.iter_mut().zip(outcomes_json) {
        *slot = item.as_u64()?;
    }
    Some(CellResult {
        freq_rel: parse_f64_hex(v.str_field("freq")?)?,
        perf_rel: parse_f64_hex(v.str_field("perf")?)?,
        power_w: parse_f64_hex(v.str_field("power")?)?,
        outcomes: OutcomeCounts::from_array(outcomes),
    })
}

fn record_from_json(v: &Json) -> Option<ChipRecord> {
    if v.str_field("kind") != Some("chip") {
        return None;
    }
    let chip = v.u64_field("chip")? as usize;
    let seed = v.u64_field("seed")?;
    let outcome = match v.str_field("status")? {
        "ok" => RecordedOutcome::Ok {
            baseline: cell_from_json(v.get("baseline")?)?,
            cells: v
                .get("cells")?
                .as_arr()?
                .iter()
                .map(cell_from_json)
                .collect::<Option<Vec<_>>>()?,
        },
        "failed" => RecordedOutcome::Failed {
            error: v.str_field("error")?.to_string(),
        },
        _ => return None,
    };
    let mut metrics = CapturedMetrics::default();
    for (name, v) in pair_entries(v.get("counters")?)? {
        metrics.counters.push((name, v.as_u64()?));
    }
    for (name, v) in pair_entries(v.get("gauges")?)? {
        metrics.gauges.push((name, parse_f64_hex(v.as_str()?)?));
    }
    for (name, v) in pair_entries(v.get("observes")?)? {
        let vs = v
            .as_arr()?
            .iter()
            .map(|x| x.as_str().and_then(parse_f64_hex))
            .collect::<Option<Vec<_>>>()?;
        metrics.observes.push((name, vs));
    }
    Some(ChipRecord {
        chip,
        seed,
        outcome,
        metrics,
    })
}

/// Decodes `[["name", value], ...]` into (name, value) pairs.
fn pair_entries(v: &Json) -> Option<Vec<(String, &Json)>> {
    v.as_arr()?
        .iter()
        .map(|pair| {
            let items = pair.as_arr()?;
            if items.len() != 2 {
                return None;
            }
            Some((items[0].as_str()?.to_string(), &items[1]))
        })
        .collect()
}

/// An open sidecar the campaign appends committed chips to. Every append
/// writes one complete line and flushes, so a crash tears at most the
/// final line (which the loader drops).
#[derive(Debug)]
pub(crate) struct CheckpointWriter {
    file: std::fs::File,
    path: PathBuf,
}

impl CheckpointWriter {
    /// Starts a fresh sidecar: truncates `path` and writes the header.
    pub fn create(
        path: &Path,
        fingerprint: u64,
        chips: usize,
    ) -> Result<Self, CheckpointError> {
        // The sidecar is an incremental append log, not a final artifact:
        // its crash-consistency comes from one-line-per-write + flush and
        // the loader's torn-tail tolerance, not from atomic replacement.
        let file = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err(path, &e))?;
        let mut writer = Self {
            file,
            path: path.to_path_buf(),
        };
        // The sidecar grows after the header, so the stamp carries the
        // config fingerprint but no content address (append logs have
        // none until finished).
        let prov = Provenance::capture("campaign-ckpt").with_config_fingerprint(fingerprint);
        let header = JsonObject::new()
            .str("kind", "campaign-ckpt")
            .u64("version", VERSION)
            .str("fingerprint", &format!("{fingerprint:016x}"))
            .u64("chips", chips as u64)
            .raw("provenance", &prov.to_json())
            .finish();
        writer.write_line(&header)?;
        provenance::append_journal(path, &prov).map_err(|e| io_err(path, &e))?;
        Ok(writer)
    }

    /// Appends one committed chip.
    pub fn append(&mut self, rec: &ChipRecord) -> Result<(), CheckpointError> {
        self.write_line(&render_record(rec))
    }

    fn write_line(&mut self, line: &str) -> Result<(), CheckpointError> {
        let mut bytes = Vec::with_capacity(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        self.file
            .write_all(&bytes)
            .and_then(|()| self.file.flush())
            .map_err(|e| io_err(&self.path, &e))
    }
}

/// The number of committed chips recorded in the sidecar at `path` (0
/// when the file is missing or holds no complete header line). Drivers
/// use this to reconcile a streaming trace file with the checkpoint
/// frontier before resuming.
///
/// # Errors
///
/// [`CheckpointError`] on unreadable or corrupt (beyond a torn final
/// line) sidecars.
pub fn committed_chips(path: &Path) -> Result<usize, CheckpointError> {
    Ok(load(path)?.map_or(0, |l| l.records.len()))
}

/// A successfully loaded sidecar: the header plus the contiguous prefix
/// of committed chips.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LoadedCheckpoint {
    pub fingerprint: u64,
    pub chips: usize,
    pub records: Vec<ChipRecord>,
}

/// Loads a sidecar. `Ok(None)` when the file does not exist or holds no
/// complete header (e.g. a crash tore the very first line) — both mean
/// "start fresh". A torn *final* line is dropped; anything malformed
/// before that is [`CheckpointError::Corrupt`]. Committed chips must be
/// the contiguous prefix `0..K` in order.
pub(crate) fn load(path: &Path) -> Result<Option<LoadedCheckpoint>, CheckpointError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(path, &e)),
    };
    // A final line without a trailing newline is torn mid-write.
    let complete_len = text.rfind('\n').map(|p| p + 1).unwrap_or(0);
    let lines: Vec<&str> = text[..complete_len].lines().collect();
    let parsed: Vec<Json> = {
        let mut parsed = Vec::with_capacity(lines.len());
        for (i, line) in lines.iter().enumerate() {
            match Json::parse(line) {
                Ok(v) => parsed.push(v),
                Err(e) => {
                    return Err(CheckpointError::Corrupt {
                        line: i + 1,
                        message: e.to_string(),
                    })
                }
            }
        }
        parsed
    };
    let Some(header) = parsed.first() else {
        return Ok(None);
    };
    if header.str_field("kind") != Some("campaign-ckpt") {
        return Err(CheckpointError::Corrupt {
            line: 1,
            message: "missing campaign-ckpt header".to_string(),
        });
    }
    if header.u64_field("version") != Some(VERSION) {
        return Err(CheckpointError::Corrupt {
            line: 1,
            message: format!("unsupported checkpoint version (want {VERSION})"),
        });
    }
    let fingerprint = header
        .str_field("fingerprint")
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| CheckpointError::Corrupt {
            line: 1,
            message: "bad fingerprint field".to_string(),
        })?;
    let chips = header
        .u64_field("chips")
        .ok_or_else(|| CheckpointError::Corrupt {
            line: 1,
            message: "bad chips field".to_string(),
        })? as usize;
    let mut records = Vec::with_capacity(parsed.len().saturating_sub(1));
    for (i, v) in parsed.iter().enumerate().skip(1) {
        let Some(rec) = record_from_json(v) else {
            return Err(CheckpointError::Corrupt {
                line: i + 1,
                message: "malformed chip record".to_string(),
            });
        };
        if rec.chip != records.len() {
            return Err(CheckpointError::Corrupt {
                line: i + 1,
                message: format!(
                    "non-contiguous chip records: expected chip {}, found {}",
                    records.len(),
                    rec.chip
                ),
            });
        }
        records.push(rec);
    }
    if records.len() > chips {
        return Err(CheckpointError::Corrupt {
            line: lines.len(),
            message: "more chip records than the header's chip count".to_string(),
        });
    }
    Ok(Some(LoadedCheckpoint {
        fingerprint,
        chips,
        records,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eval_trace::Event;

    fn sample_record(chip: usize) -> ChipRecord {
        ChipRecord {
            chip,
            seed: 2008 + chip as u64,
            outcome: RecordedOutcome::Ok {
                baseline: CellResult {
                    freq_rel: 0.87,
                    perf_rel: 0.91,
                    power_w: 23.5,
                    outcomes: OutcomeCounts::from_array([1, 2, 3, 4, 5]),
                },
                cells: vec![CellResult::default(), CellResult {
                    freq_rel: -0.0,
                    perf_rel: f64::MIN_POSITIVE,
                    power_w: 1.0 / 3.0,
                    outcomes: OutcomeCounts::default(),
                }],
            },
            metrics: CapturedMetrics {
                counters: vec![("cache.hit".to_string(), 7)],
                gauges: vec![("campaign.chips_total".to_string(), 2.0)],
                observes: vec![("decision.f_ghz".to_string(), vec![4.0, 4.25])],
            },
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "eval-adapt-ckpt-{tag}-{}.ckpt.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        let rec = sample_record(0);
        let line = render_record(&rec);
        let back = record_from_json(&Json::parse(&line).expect("parses")).expect("decodes");
        assert_eq!(back, rec);
    }

    #[test]
    fn failed_records_round_trip() {
        let rec = ChipRecord {
            chip: 3,
            seed: 9,
            outcome: RecordedOutcome::Failed {
                error: "worst-case-provisioned static configuration: diverged".to_string(),
            },
            metrics: CapturedMetrics::default(),
        };
        let back = record_from_json(&Json::parse(&render_record(&rec)).expect("parses"))
            .expect("decodes");
        assert_eq!(back, rec);
    }

    #[test]
    fn writer_and_loader_round_trip_with_torn_tail_tolerance() {
        let path = temp_path("roundtrip");
        let mut w = CheckpointWriter::create(&path, 0xdead_beef, 3).expect("creates");
        w.append(&sample_record(0)).expect("appends");
        w.append(&sample_record(1)).expect("appends");
        drop(w);
        // Tear the sidecar mid-line: the loader drops the torn record.
        let full = std::fs::read_to_string(&path).expect("readable");
        let torn = &full[..full.len() - 17];
        std::fs::write(&path, torn).expect("writable");
        let loaded = load(&path).expect("loads").expect("present");
        assert_eq!(loaded.fingerprint, 0xdead_beef);
        assert_eq!(loaded.chips, 3);
        assert_eq!(loaded.records, vec![sample_record(0)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loader_errors_on_mid_file_corruption_and_gaps() {
        let path = temp_path("corrupt");
        let mut w = CheckpointWriter::create(&path, 1, 3).expect("creates");
        w.append(&sample_record(0)).expect("appends");
        w.append(&sample_record(1)).expect("appends");
        drop(w);
        let full = std::fs::read_to_string(&path).expect("readable");
        // Corrupt a *middle* line: hard error with its line number.
        let broken = full.replacen("\"kind\":\"chip\"", "\"kind\":\"ch", 1);
        std::fs::write(&path, &broken).expect("writable");
        match load(&path) {
            Err(CheckpointError::Corrupt { line: 2, .. }) => {}
            other => panic!("expected Corrupt at line 2, got {other:?}"),
        }
        // A gap in chip indices is also corruption.
        let gap = full.replace("\"chip\":1", "\"chip\":2");
        std::fs::write(&path, &gap).expect("writable");
        assert!(matches!(
            load(&path),
            Err(CheckpointError::Corrupt { line: 3, .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_or_headerless_sidecars_mean_start_fresh() {
        let path = temp_path("fresh");
        std::fs::remove_file(&path).ok();
        assert_eq!(load(&path).expect("loads"), None);
        // A torn header (single line, no newline) also means fresh.
        std::fs::write(&path, "{\"kind\":\"campaign-ck").expect("writable");
        assert_eq!(load(&path).expect("loads"), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn capture_preserves_per_name_observation_order_and_sums_counters() {
        let records = vec![
            Record::Metric(MetricUpdate::CounterAdd("c".into(), 2)),
            Record::Event(Event::ChipStart { chip: 0 }),
            Record::Metric(MetricUpdate::Observe("h".into(), 2.0)),
            Record::Metric(MetricUpdate::CounterAdd("c".into(), 3)),
            Record::Metric(MetricUpdate::GaugeSet("g".into(), 1.0)),
            Record::Metric(MetricUpdate::GaugeSet("g".into(), 4.0)),
            Record::Metric(MetricUpdate::Observe("h".into(), 1.0)),
        ];
        let m = capture_metrics(&records);
        assert_eq!(m.counters, vec![("c".to_string(), 5)]);
        assert_eq!(m.gauges, vec![("g".to_string(), 4.0)]);
        assert_eq!(m.observes, vec![("h".to_string(), vec![2.0, 1.0])]);
        assert_eq!(m.to_updates().len(), 4);
    }

    #[test]
    fn fingerprint_tracks_configuration_not_thread_count() {
        let mut a = Campaign::new(2);
        let envs = [Environment::TS];
        let schemes = [Scheme::ExhDyn];
        let base = fingerprint(&a, &envs, &schemes);
        a.threads = 7;
        assert_eq!(fingerprint(&a, &envs, &schemes), base, "threads excluded");
        a.base_seed = 1;
        assert_ne!(fingerprint(&a, &envs, &schemes), base, "seed included");
        a.base_seed = 2008;
        assert_ne!(
            fingerprint(&a, &envs, &[Scheme::Static]),
            base,
            "schemes included"
        );
        assert_ne!(
            fingerprint(&a, &[Environment::TS_ASV], &schemes),
            base,
            "envs included"
        );
    }
}
