//! The power vs error-rate vs frequency/performance surfaces of Figure 9:
//! for one subsystem, the minimum realizable `PE` at each (power budget,
//! frequency) point under per-subsystem ASV/ABB.

use eval_core::{
    Environment, EvalConfig, OperatingConditions, PerfModel, SubsystemState, VariantSelection,
};
use eval_power::{SolveCache, ThermalEnvironment};
use eval_units::{GHz, Volts};

/// One sample of the Figure 9(a) surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfacePoint {
    /// Relative frequency (`f / f_nominal`).
    pub f_rel: f64,
    /// Subsystem power, watts.
    pub power_w: f64,
    /// Minimum achievable error probability per access at that (f, P).
    pub pe: f64,
    /// Relative processor performance at that point (Figure 9(b)), using
    /// the supplied phase model.
    pub perf_rel: f64,
}

/// Sweeps the `(Vdd, Vbb)` settings of `state` over the frequency grid and
/// returns, for each `(power bin, f)`, the minimum achievable `PE`
/// (the surface of Figure 9(a)) plus the corresponding relative
/// performance (Figure 9(b)).
///
/// * `perf` — the phase's Equation-5 model (for the performance axis).
/// * `rho` — the subsystem's exercise rate (weights `PE` into err/inst).
/// * `novar_perf` — the reference performance normalizing `perf_rel`.
#[allow(clippy::too_many_arguments)]
pub fn pe_power_frequency_surface(
    config: &EvalConfig,
    state: &SubsystemState,
    env: Environment,
    th_c: f64,
    alpha_f: f64,
    rho: f64,
    perf: &PerfModel,
    novar_perf: f64,
) -> Vec<SurfacePoint> {
    let variants = VariantSelection::default();
    let vdds: &[f64] = if env.asv { eval_power::vdd_steps() } else { &[1.0] };
    let vbbs: &[f64] = if env.abb { eval_power::vbb_steps() } else { &[0.0] };

    // Per-sweep invariants, hoisted out of the candidate loops; thermal
    // solves are memoized and warm-started across the frequency ladder.
    let params = state.power_params(&variants);
    let timing = state.timing(&variants);
    let tenv = ThermalEnvironment { th_c, alpha_f };
    let mut cache = SolveCache::new();

    let mut points = Vec::new();
    for f_idx in 0..eval_core::FREQ_LADDER.len() {
        let f = eval_core::FREQ_LADDER.at(f_idx);
        // Minimum PE for each power level: collect feasible (power, pe)
        // pairs and keep the Pareto-minimal PE per power bin.
        let mut candidates: Vec<(f64, f64)> = Vec::new();
        for &vdd in vdds {
            for &vbb in vbbs {
                let Ok(sol) = cache.solve_ladder(
                    &params,
                    &tenv,
                    &config.device,
                    f_idx,
                    Volts::raw(vdd),
                    Volts::raw(vbb),
                ) else {
                    continue;
                };
                if sol.t_c > config.constraints.t_max_c {
                    continue;
                }
                let cond = OperatingConditions {
                    vdd: Volts::raw(vdd),
                    vbb: Volts::raw(vbb),
                    t_c: sol.t_c,
                };
                let pe = timing.pe_access(GHz::raw(f), &cond);
                candidates.push((sol.total_w(), pe));
            }
        }
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Pareto front: as power increases, keep the best (lowest) PE so far.
        let mut best_pe = f64::INFINITY;
        for (p, pe) in candidates {
            if pe < best_pe {
                best_pe = pe;
                let pe_inst = (rho * pe).clamp(0.0, 1.0);
                points.push(SurfacePoint {
                    f_rel: f / config.f_nominal_ghz,
                    power_w: p,
                    pe,
                    perf_rel: perf.perf(f, pe_inst) / novar_perf,
                });
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use eval_core::{ChipFactory, SubsystemId};
    use std::sync::OnceLock;

    fn factory() -> &'static ChipFactory {
        static F: OnceLock<ChipFactory> = OnceLock::new();
        F.get_or_init(|| ChipFactory::new(EvalConfig::micro08()))
    }

    fn surface() -> Vec<SurfacePoint> {
        let cfg = factory().config().clone();
        let chip = factory().chip(1);
        let state = chip.core(0).subsystem(SubsystemId::IntAlu);
        let perf = PerfModel::new(1.0, 0.004, 52.0, 21.0);
        let novar = perf.perf(4.0, 0.0);
        pe_power_frequency_surface(
            &cfg,
            state,
            Environment::TS_ABB_ASV,
            60.0,
            0.6,
            0.6,
            &perf,
            novar,
        )
    }

    #[test]
    fn surface_is_nonempty_and_sane() {
        let pts = surface();
        assert!(pts.len() > 50);
        for p in &pts {
            assert!((0.0..=1.0).contains(&p.pe));
            assert!(p.power_w > 0.0);
            assert!(p.perf_rel > 0.0);
        }
    }

    #[test]
    fn more_power_buys_lower_pe_at_fixed_frequency() {
        // Line (2) of Figure 9(a): at a fixed f with errors present, the
        // Pareto points must show PE falling as power rises.
        let pts = surface();
        // Group by f_rel and check monotonicity.
        let mut by_f: std::collections::BTreeMap<u64, Vec<&SurfacePoint>> =
            std::collections::BTreeMap::new();
        for p in &pts {
            by_f.entry((p.f_rel * 1000.0) as u64).or_default().push(p);
        }
        let mut checked = false;
        for (_, group) in by_f {
            if group.len() < 2 {
                continue;
            }
            for pair in group.windows(2) {
                assert!(pair[1].power_w >= pair[0].power_w);
                assert!(pair[1].pe <= pair[0].pe);
            }
            checked = true;
        }
        assert!(checked, "no frequency had multiple Pareto points");
    }

    #[test]
    fn pe_grows_with_frequency_at_the_cheapest_setting() {
        let pts = surface();
        // First Pareto point per frequency = cheapest power; PE should be
        // non-decreasing with f overall (allow small wobble from the
        // discrete voltage grid).
        let mut firsts: Vec<&SurfacePoint> = Vec::new();
        let mut last_f = -1.0;
        for p in &pts {
            if p.f_rel > last_f {
                firsts.push(p);
                last_f = p.f_rel;
            }
        }
        let low = firsts.first().unwrap();
        let high = firsts.last().unwrap();
        assert!(high.pe >= low.pe);
    }
}
