//! Fuzzy-vs-exhaustive fidelity (Table 2): mean absolute difference of the
//! frequency, `Vdd` and `Vbb` selections, split by subsystem type.

use eval_core::{
    ChipFactory, Environment, EvalConfig, SubsystemKind, VariantSelection, FREQ_LADDER,
    N_SUBSYSTEMS,
};
use eval_uarch::SubsystemId;
use eval_rng::ChaCha12Rng;

use crate::exhaustive::ExhaustiveOptimizer;
use crate::fuzzy_ctl::{FuzzyOptimizer, TrainingBudget};
use crate::optimizer::{Optimizer, SubsystemScene};

/// One row of Table 2: mean |fuzzy − exhaustive| per subsystem type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityRow {
    /// The environment the controllers were trained for.
    pub env: Environment,
    /// Mean |Δf| in MHz, per subsystem kind `[memory, mixed, logic]`.
    pub freq_mhz: [f64; 3],
    /// Mean |ΔVdd| in mV (ASV environments; 0 otherwise).
    pub vdd_mv: [f64; 3],
    /// Mean |ΔVbb| in mV (ABB environments; 0 otherwise).
    pub vbb_mv: [f64; 3],
}

fn kind_slot(kind: SubsystemKind) -> usize {
    match kind {
        SubsystemKind::Memory => 0,
        SubsystemKind::Mixed => 1,
        SubsystemKind::Logic => 2,
    }
}

/// Measures fuzzy-controller fidelity against the exhaustive oracle over
/// `chips` chips and `queries` random sensed-input scenes per chip, for
/// each of the given environments (the paper uses TS, TS+ABB, TS+ASV and
/// TS+ABB+ASV — [`Environment::TABLE2`]).
pub fn fidelity_table(
    config: &EvalConfig,
    envs: &[Environment],
    chips: usize,
    queries: usize,
    training: &TrainingBudget,
    seed: u64,
) -> Vec<FidelityRow> {
    assert!(chips > 0 && queries > 0, "need work to measure");
    let factory = ChipFactory::new(config.clone());
    let oracle = ExhaustiveOptimizer::new();
    let pe_budget = config.constraints.pe_budget_per_subsystem(N_SUBSYSTEMS);

    envs.iter()
        .map(|&env| {
            let mut sum_f = [0.0; 3];
            let mut sum_vdd = [0.0; 3];
            let mut sum_vbb = [0.0; 3];
            let mut counts = [0usize; 3];
            let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0xF1DE);
            for chip_idx in 0..chips {
                let chip = factory.chip(seed.wrapping_add(chip_idx as u64 * 0x51));
                let fuzzy = FuzzyOptimizer::train(config, &chip, 0, env, training);
                for _ in 0..queries {
                    let id = SubsystemId::from_index(rng.gen_range(0..N_SUBSYSTEMS));
                    let state = chip.core(0).subsystem(id);
                    let scene = SubsystemScene {
                        state,
                        variants: VariantSelection::default(),
                        th_c: rng.gen_range(48.0..70.0),
                        alpha_f: rng.gen_range(0.05..0.95),
                        rho: rng.gen_range(0.05..2.2),
                        pe_budget,
                        env,
                    };
                    let slot = kind_slot(state.descriptor().kind);
                    let f_exh = oracle.freq_max(config, &scene);
                    let f_fuz = fuzzy.freq_max(config, &scene);
                    sum_f[slot] += (f_fuz - f_exh).abs() * 1e3;
                    let f_core = FREQ_LADDER.floor(f_exh);
                    let (vdd_e, vbb_e) = oracle.power_settings(config, &scene, f_core);
                    let (vdd_f, vbb_f) = fuzzy.power_settings(config, &scene, f_core);
                    sum_vdd[slot] += (vdd_f - vdd_e).abs() * 1e3;
                    sum_vbb[slot] += (vbb_f - vbb_e).abs() * 1e3;
                    counts[slot] += 1;
                }
            }
            let mean = |sums: [f64; 3]| {
                let mut out = [0.0; 3];
                for i in 0..3 {
                    out[i] = if counts[i] == 0 {
                        0.0
                    } else {
                        sums[i] / counts[i] as f64
                    };
                }
                out
            };
            FidelityRow {
                env,
                freq_mhz: mean(sum_f),
                vdd_mv: mean(sum_vdd),
                vbb_mv: mean(sum_vbb),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eval_fuzzy::TrainingConfig;

    #[test]
    fn fuzzy_frequency_errors_are_a_few_percent_of_nominal() {
        let config = EvalConfig::micro08();
        let training = TrainingBudget {
            examples: 120,
            config: TrainingConfig {
                epochs: 4,
                ..TrainingConfig::micro08()
            },
            seed: 5,
        };
        let rows = fidelity_table(&config, &[Environment::TS_ASV], 1, 40, &training, 31);
        let row = &rows[0];
        for (k, err) in row.freq_mhz.iter().enumerate() {
            // Paper's Table 2 reports ~150-450 MHz (4-11% of nominal).
            assert!(*err < 600.0, "kind {k}: mean |df| = {err} MHz");
        }
        // Vbb is unused without ABB.
        assert!(row.vbb_mv.iter().all(|&v| v == 0.0));
    }
}
