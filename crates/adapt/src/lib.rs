//! # eval-adapt
//!
//! High-dimensional dynamic adaptation for variation-induced timing errors
//! — §4 of the EVAL paper (MICRO 2008). Per program phase, a controller
//! chooses `2n + 3` outputs: the core frequency, per-subsystem `Vdd` (ASV)
//! and `Vbb` (ABB), the issue-queue size, and which functional-unit
//! implementation to enable — maximizing frequency subject to the error
//! rate (`PEMAX`), power (`PMAX`) and temperature (`TMAX`) constraints.
//!
//! Two interchangeable optimizer backends implement the paper's `Freq` and
//! `Power` algorithms (Figure 3):
//!
//! * [`ExhaustiveOptimizer`] — grid search over the actuator ladders (the
//!   oracle used offline by the manufacturer);
//! * [`FuzzyOptimizer`] — per-subsystem fuzzy controllers trained against
//!   the exhaustive oracle (the deployable software controller).
//!
//! On top of those sit the structure-choice rules of §4.2 (FU replication
//! per Figure 4, issue-queue resizing by estimated performance), the
//! retuning cycles of §4.3.3 with their five outcomes (Figure 13), the
//! static/dynamic adaptation drivers, and the campaign harness that
//! regenerates Figures 10–13 and Table 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod checkpoint;
pub mod choice;
pub mod controller;
pub mod exhaustive;
pub mod fidelity;
pub mod fuzzy_ctl;
pub mod global_dvfs;
pub mod optimizer;
pub mod retune;
pub mod runtime;
pub mod surface;

pub use campaign::{
    Campaign, CampaignError, CampaignResult, CellResult, ChipFailure, ChipOutcome, Scheme,
};
pub use checkpoint::{committed_chips, fingerprint, CheckpointError, CheckpointOptions};
pub use choice::{choose_fu, choose_queue};
pub use controller::{decide_phase, AdaptationTimeline, PhaseDecision};
pub use exhaustive::ExhaustiveOptimizer;
pub use fidelity::{fidelity_table, FidelityRow};
pub use fuzzy_ctl::{FuzzyOptimizer, TrainingBudget};
pub use global_dvfs::GlobalDvfsOptimizer;
pub use optimizer::{Optimizer, SceneEval, SubsystemScene};
pub use retune::{retune, Outcome, RetuneResult};
pub use runtime::{AdaptiveSystem, RuntimeEvent, RuntimeStats};
