//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace-local
//! package provides the subset of proptest the test suites use — the
//! `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, range and
//! collection strategies, and `ProptestConfig` — backed by the
//! deterministic [`eval_rng::ChaCha12Rng`]. Every test function draws its
//! cases from a stream seeded by the test's own name, so failures are
//! reproducible run-to-run and machine-to-machine (there is no persistence
//! file and no shrinking: a failing case reports the drawn values instead).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

pub use eval_rng::ChaCha12Rng as TestRng;

/// Runner configuration (the `cases` knob only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property case (carries the formatted assertion message).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Seeds a per-test deterministic stream from the test path (FNV-1a).
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value: fmt::Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, usize, u64, u32, i64, i32);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors with lengths drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.0.len() <= 1 {
                self.size.0.start
            } else {
                rng.gen_range(self.size.0.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// A fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Draws `true`/`false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// Everything a `proptest!` test module needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body across `config.cases` sampled
/// argument tuples.
#[macro_export]
macro_rules! proptest {
    { #![proptest_config($cfg:expr)] $($rest:tt)* } => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    { ($cfg:expr) } => {};
    { ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    } => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let described =
                    format!(concat!($(stringify!($arg), " = {:?}; "),+), $(&$arg),+);
                let run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                if let Err(e) = run() {
                    panic!(
                        "property {} failed at case {}/{}: {}\n  with {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        described,
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// `assert!` for property bodies: fails the case instead of panicking
/// directly, so the runner can report which case number failed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs,
                format!($($fmt)+)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_respected(x in 0.25f64..0.75, n in 3usize..9) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((3..9).contains(&n), "n = {n}");
        }

        #[test]
        fn vectors_obey_length_specs(
            fixed in crate::collection::vec(0.0f64..1.0, 4),
            ranged in crate::collection::vec(0u64..10, 1..6),
            flag in crate::bool::ANY,
        ) {
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!(!ranged.is_empty() && ranged.len() < 6);
            prop_assert!(flag || !flag);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_attribute_parses(x in 0i64..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn streams_are_deterministic_per_test_name() {
        let mut a = crate::rng_for("a::b::c");
        let mut b = crate::rng_for("a::b::c");
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        let mut other = crate::rng_for("a::b::d");
        assert_ne!(a.gen::<u64>(), other.gen::<u64>());
    }
}
