//! # eval-core
//!
//! The EVAL framework (MICRO 2008): ties the variation, timing, power and
//! microarchitecture substrates into a per-chip model of a 4-core CMP whose
//! cores comprise the 15 subsystems of Figure 7(b), and defines
//!
//! * the **environments** of Table 1 (`Baseline`, `TS`, `TS+ASV`, …,
//!   `NoVar`) as capability sets ([`env`]),
//! * the **performance model** of Equation 5 ([`perf`]),
//! * the **constraint set** and actuator ladders (re-exported from
//!   `eval-power`),
//! * the **area accounting** of Figure 7(d) ([`area`]), and
//! * the per-chip, per-subsystem state ([`chip`]) used by the optimizers in
//!   `eval-adapt`: error rate `PE(f)` under any `(Vdd, Vbb, T)`, thermal
//!   solutions, and the low-slope / downsized structure variants.
//!
//! ## Example
//!
//! ```
//! use eval_core::{ChipModel, EvalConfig};
//!
//! let config = EvalConfig::micro08();
//! let chip = ChipModel::sample(&config, 0);
//! let core = chip.core(0);
//! // Variation makes the safe frequency workload-independent and usually
//! // below the 4 GHz nominal:
//! let fvar = core.fvar_nominal(&config);
//! assert!(fvar.get() > 2.0 && fvar.get() < 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod chip;
pub mod config;
pub mod env;
pub mod layout;
pub mod perf;
pub mod retiming;
pub mod subsystem;
pub mod tester;

pub use area::AreaBreakdown;
pub use chip::{
    ChipFactory, ChipModel, CoreEvalPlan, CoreEvaluation, CoreModel, FuChoice, InfeasibleConfig,
    QueueChoice, SubsystemEvaluation, SubsystemState, VariantSelection,
};
pub use config::EvalConfig;
pub use env::Environment;
pub use layout::Floorplan;
pub use perf::{CpiBreakdown, PerfModel};
pub use retiming::{retime_core, RetimingResult};
pub use subsystem::SubsystemDescriptor;
pub use tester::{measure_vt0, measure_vt0_traced};

// Re-export the vocabulary types users need alongside this crate.
pub use eval_power::{Constraints, Ladder, OperatingPoint, FREQ_LADDER, VBB_LADDER, VDD_LADDER};
pub use eval_timing::{OperatingConditions, SubsystemKind};
pub use eval_units::{consts, ErrorRate, GHz, Kelvin, UnitRangeError, Volts, Watts};
pub use eval_uarch::{SubsystemId, N_SUBSYSTEMS};
