//! Dynamic pipeline retiming — the related-work baseline of §7.
//!
//! ReCycle-style proposals (Tiwari et al., ISCA 2007) tolerate variation by
//! *redistributing slack among pipeline stages* with programmable clock
//! skews: a slow stage borrows time from its faster neighbours, so the
//! cycle time approaches the **average** stage delay instead of the
//! **worst** one. Crucially, the processor still runs error-free at a safe
//! frequency — no checker, no error-rate/power/frequency trade-off.
//!
//! The paper argues EVAL is the more powerful framework (its measured gains
//! are 40% vs retiming's 10–20%); this module implements the retiming
//! baseline so that comparison can be reproduced (`cargo run -p eval-bench
//! --bin retiming`).

use eval_timing::OperatingConditions;

use crate::chip::{CoreModel, VariantSelection};
use crate::config::EvalConfig;

/// Result of applying time borrowing to one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetimingResult {
    /// The conventional worst-stage frequency (the `Baseline`).
    pub f_baseline_ghz: f64,
    /// The retimed frequency with the given borrowing limit.
    pub f_retimed_ghz: f64,
    /// The ideal (unbounded-borrowing) frequency: the average-stage bound.
    pub f_ideal_ghz: f64,
}

impl RetimingResult {
    /// Speedup of bounded retiming over the worst-stage baseline.
    pub fn speedup(&self) -> f64 {
        self.f_retimed_ghz / self.f_baseline_ghz
    }
}

/// Applies skew-based time borrowing to `core` at nominal conditions.
///
/// Each subsystem `i` has a sign-off critical period `t_i` (the inverse of
/// its error-free frequency, guardband preserved). A stage can donate at
/// most `borrow_limit` of the cycle to a neighbour, so the achievable
/// period is bounded below by both the *mean* stage period (conservation
/// of time around the pipeline loop) and the worst stage minus the
/// borrowing allowance:
///
/// ```text
/// T_retimed = max( mean_i(t_i),  max_i(t_i) - borrow_limit * T_nominal )
/// ```
///
/// # Panics
///
/// Panics if `borrow_limit` is negative.
pub fn retime_core(config: &EvalConfig, core: &CoreModel, borrow_limit: f64) -> RetimingResult {
    assert!(borrow_limit >= 0.0, "borrowing allowance must be non-negative");
    let cond = OperatingConditions::nominal();
    let guard = 1.0 + eval_timing::DESIGN_GUARDBAND;
    let periods: Vec<f64> = core
        .subsystems()
        .iter()
        .map(|s| {
            let f_phys = s
                .timing(&VariantSelection::default())
                .max_frequency(&cond, s.design_pe());
            guard / f_phys.get()
        })
        .collect();
    let worst = periods.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = periods.iter().sum::<f64>() / periods.len() as f64;
    let t_nom = config.t_nominal_ns();
    let t_retimed = mean.max(worst - borrow_limit * t_nom);
    RetimingResult {
        f_baseline_ghz: 1.0 / worst,
        f_retimed_ghz: 1.0 / t_retimed,
        f_ideal_ghz: 1.0 / mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::ChipFactory;
    use std::sync::OnceLock;

    fn factory() -> &'static ChipFactory {
        static F: OnceLock<ChipFactory> = OnceLock::new();
        F.get_or_init(|| ChipFactory::new(EvalConfig::micro08()))
    }

    #[test]
    fn retiming_helps_but_is_bounded_by_the_mean() {
        let cfg = factory().config().clone();
        let chip = factory().chip(4);
        let r = retime_core(&cfg, chip.core(0), 0.10);
        assert!(r.f_retimed_ghz >= r.f_baseline_ghz);
        assert!(r.f_retimed_ghz <= r.f_ideal_ghz + 1e-12);
        assert!(r.f_ideal_ghz > r.f_baseline_ghz);
    }

    #[test]
    fn zero_borrowing_is_the_baseline() {
        let cfg = factory().config().clone();
        let chip = factory().chip(5);
        let r = retime_core(&cfg, chip.core(0), 0.0);
        assert!((r.f_retimed_ghz - r.f_baseline_ghz).abs() < 1e-12);
    }

    #[test]
    fn generous_borrowing_reaches_the_ideal() {
        let cfg = factory().config().clone();
        let chip = factory().chip(6);
        let r = retime_core(&cfg, chip.core(0), 1.0);
        assert!((r.f_retimed_ghz - r.f_ideal_ghz).abs() < 1e-12);
    }

    #[test]
    fn retiming_gain_is_modest_on_average() {
        // The paper's point: retiming recovers 10-20%, EVAL much more.
        let cfg = factory().config().clone();
        let mut total = 0.0;
        let n = 8;
        for chip in factory().population(300, n) {
            total += retime_core(&cfg, chip.core(0), 0.10).speedup();
        }
        let mean = total / n as f64;
        assert!(
            mean > 1.02 && mean < 1.35,
            "mean retiming speedup {mean} out of the expected band"
        );
    }

    #[test]
    fn baseline_matches_fvar_nominal() {
        let cfg = factory().config().clone();
        let chip = factory().chip(7);
        let r = retime_core(&cfg, chip.core(0), 0.1);
        let fvar = chip.core(0).fvar_nominal(&cfg).get();
        assert!(
            (r.f_baseline_ghz - fvar).abs() / fvar < 1e-9,
            "retiming baseline {} vs fvar {fvar}",
            r.f_baseline_ghz
        );
    }
}
