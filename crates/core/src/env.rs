//! The environments of Table 1 (plus the ABB-only variants used by
//! Table 2 and Figure 13).

use std::fmt;

/// A named capability set: which error-tolerance and mitigation techniques
/// are available to the processor.
///
/// # Example
///
/// ```
/// use eval_core::Environment;
/// assert!(Environment::TS.checker && !Environment::TS.asv);
/// assert!(Environment::ALL.abb);
/// // Custom technique subsets are ordinary struct updates:
/// let ts_q = Environment { queue: true, name: "TS+Q", ..Environment::TS };
/// assert!(ts_q.queue && !ts_q.fu_replication);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Environment {
    /// Display name (matches the paper's labels).
    pub name: &'static str,
    /// Timing speculation: the Diva checker is present, so the core may run
    /// past `fvar` and tolerate a non-zero error rate.
    pub checker: bool,
    /// Per-subsystem adaptive supply voltage.
    pub asv: bool,
    /// Per-subsystem adaptive body bias.
    pub abb: bool,
    /// Issue-queue resizing (full vs 3/4).
    pub queue: bool,
    /// Functional-unit replication (normal vs low-slope).
    pub fu_replication: bool,
    /// Whether the chip suffers variation at all (`NoVar` does not).
    pub variation: bool,
}

impl Environment {
    /// 1: plain processor with variation effects.
    pub const BASELINE: Environment = Environment {
        name: "Baseline",
        checker: false,
        asv: false,
        abb: false,
        queue: false,
        fu_replication: false,
        variation: true,
    };

    /// 2: Baseline + Diva checker for timing speculation.
    pub const TS: Environment = Environment {
        name: "TS",
        checker: true,
        ..Self::BASELINE
    };

    /// 3: TS + adaptive supply voltage.
    pub const TS_ASV: Environment = Environment {
        name: "TS+ASV",
        asv: true,
        ..Self::TS
    };

    /// 4: TS + ASV + ABB.
    pub const TS_ASV_ABB: Environment = Environment {
        name: "TS+ASV+ABB",
        abb: true,
        ..Self::TS_ASV
    };

    /// 5: TS + ASV + issue-queue resizing.
    pub const TS_ASV_Q: Environment = Environment {
        name: "TS+ASV+Q",
        queue: true,
        ..Self::TS_ASV
    };

    /// 6: TS + ASV + Q + FU replication.
    pub const TS_ASV_Q_FU: Environment = Environment {
        name: "TS+ASV+Q+FU",
        fu_replication: true,
        ..Self::TS_ASV_Q
    };

    /// 7: everything, including ABB.
    pub const ALL: Environment = Environment {
        name: "ALL",
        abb: true,
        ..Self::TS_ASV_Q_FU
    };

    /// 8: plain processor with no variation effects (the reference).
    pub const NOVAR: Environment = Environment {
        name: "NoVar",
        checker: false,
        asv: false,
        abb: false,
        queue: false,
        fu_replication: false,
        variation: false,
    };

    /// TS + ABB (used in Table 2 and Figure 13 as environment "B").
    pub const TS_ABB: Environment = Environment {
        name: "TS+ABB",
        abb: true,
        ..Self::TS
    };

    /// TS + ABB + ASV (Table 2 / Figure 13 environment "D").
    pub const TS_ABB_ASV: Environment = Environment {
        name: "TS+ABB+ASV",
        abb: true,
        ..Self::TS_ASV
    };

    /// The six adapted environments of Figures 10–12, in plot order.
    pub const FIGURE10: [Environment; 6] = [
        Self::TS,
        Self::TS_ASV,
        Self::TS_ASV_ABB,
        Self::TS_ASV_Q,
        Self::TS_ASV_Q_FU,
        Self::ALL,
    ];

    /// The four voltage environments of Table 2 / Figure 13, in order
    /// (A: TS, B: TS+ABB, C: TS+ASV, D: TS+ABB+ASV).
    pub const TABLE2: [Environment; 4] =
        [Self::TS, Self::TS_ABB, Self::TS_ASV, Self::TS_ABB_ASV];

    /// Whether any per-subsystem voltage knob exists.
    pub fn has_voltage_control(&self) -> bool {
        self.asv || self.abb
    }
}

impl fmt::Display for Environment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_ordering_is_monotone_in_capability() {
        assert!(!Environment::BASELINE.checker);
        assert!(Environment::TS.checker && !Environment::TS.asv);
        assert!(Environment::TS_ASV.asv && !Environment::TS_ASV.abb);
        assert!(Environment::ALL.asv && Environment::ALL.abb);
        assert!(Environment::ALL.queue && Environment::ALL.fu_replication);
    }

    #[test]
    fn novar_has_no_variation_and_no_techniques() {
        let e = Environment::NOVAR;
        assert!(!e.variation && !e.checker && !e.has_voltage_control());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Environment::FIGURE10.iter().map(|e| e.name).collect();
        names.extend(Environment::TABLE2.iter().map(|e| e.name));
        names.push(Environment::BASELINE.name);
        names.push(Environment::NOVAR.name);
        names.sort_unstable();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len() + 2); // TS appears in both lists
    }
}
