//! Per-chip state: variation maps turned into per-subsystem timing and
//! power models, plus whole-core configuration evaluation.

use eval_power::{solve_thermal, OperatingPoint, SubsystemPowerParams, ThermalEnvironment};
use eval_units::{GHz, Volts};
use eval_timing::{
    low_slope, resize_shift, OperatingConditions, PathClass, StageTiming,
    LOW_SLOPE_POWER_AREA_FACTOR,
};
use eval_uarch::{SubsystemId, N_SUBSYSTEMS};
use eval_variation::{ChipMap, VariationModel};

use crate::config::EvalConfig;
use crate::layout::Floorplan;
use crate::subsystem::SubsystemDescriptor;

/// Issue-queue variant choice for one queue (§3.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueChoice {
    /// Full capacity.
    #[default]
    Full,
    /// 3/4 capacity (faster paths, slightly lower power, some IPC loss).
    Small,
}

/// Functional-unit variant choice for one replicated FU (§3.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FuChoice {
    /// The original power-efficient implementation.
    #[default]
    Normal,
    /// The low-slope replica: faster near-critical paths, +30% power.
    LowSlope,
}

/// Which structure variant is enabled on each adaptable subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct VariantSelection {
    /// Integer ALU implementation.
    pub int_fu: FuChoice,
    /// FP adder/multiplier implementation.
    pub fp_fu: FuChoice,
    /// Integer issue-queue size.
    pub int_queue: QueueChoice,
    /// FP issue-queue size.
    pub fp_queue: QueueChoice,
}

/// Power factor of a downsized queue (3/4 of the bits to clock/charge).
const SMALL_QUEUE_POWER_FACTOR: f64 = 0.85;

/// One subsystem on one manufactured core: its timing model (with
/// mitigation variants where applicable) and power parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SubsystemState {
    descriptor: SubsystemDescriptor,
    timing: StageTiming,
    /// Low-slope replica timing (replicable FUs only).
    timing_low_slope: Option<StageTiming>,
    /// Downsized-structure timing (issue queues only).
    timing_small: Option<StageTiming>,
    power: SubsystemPowerParams,
    /// The sign-off error probability (per access) this subsystem was
    /// timed to — its "error-free" criterion.
    design_pe: f64,
}

impl SubsystemState {
    fn build(
        descriptor: SubsystemDescriptor,
        timing: StageTiming,
        config: &EvalConfig,
        design_pe: f64,
    ) -> Self {
        let dist = timing.distribution();
        let timing_low_slope = descriptor
            .id
            .is_replicable_fu()
            .then(|| timing.with_distribution(low_slope(&dist)));
        let timing_small = descriptor
            .id
            .is_issue_queue()
            .then(|| timing.with_distribution(resize_shift(&dist)));
        let power = SubsystemPowerParams {
            kdyn_w: descriptor.kdyn_w(GHz::raw(config.f_nominal_ghz)),
            ksta_nom_w: descriptor.sta_nom_w,
            rth_c_per_w: descriptor.rth_c_per_w,
            // The manufacturer's leakage-based tester measurement (§4.1),
            // not the (unobservable) arithmetic mean over the footprint.
            vt0: crate::tester::measure_vt0(&timing, &config.device),
        };
        Self {
            descriptor,
            timing,
            timing_low_slope,
            timing_small,
            power,
            design_pe,
        }
    }

    /// Which subsystem this is.
    pub fn id(&self) -> SubsystemId {
        self.descriptor.id
    }

    /// The sign-off error probability per access (this subsystem's
    /// "error-free" criterion; aggressively timed units have a looser one).
    pub fn design_pe(&self) -> f64 {
        self.design_pe
    }

    /// The static descriptor (kind, budgets).
    pub fn descriptor(&self) -> &SubsystemDescriptor {
        &self.descriptor
    }

    /// The tester-measured reference threshold voltage of this subsystem.
    pub fn vt0(&self) -> f64 {
        self.power.vt0
    }

    /// The timing model under the given variant selection.
    pub fn timing(&self, variants: &VariantSelection) -> &StageTiming {
        // A variant request for a subsystem without that alternative model
        // (which the optimizers never make) degrades to the base timing
        // rather than panicking.
        match self.descriptor.id {
            SubsystemId::IntAlu if variants.int_fu == FuChoice::LowSlope => {
                self.timing_low_slope.as_ref().unwrap_or(&self.timing)
            }
            SubsystemId::FpUnit if variants.fp_fu == FuChoice::LowSlope => {
                self.timing_low_slope.as_ref().unwrap_or(&self.timing)
            }
            SubsystemId::IntQueue if variants.int_queue == QueueChoice::Small => {
                self.timing_small.as_ref().unwrap_or(&self.timing)
            }
            SubsystemId::FpQueue if variants.fp_queue == QueueChoice::Small => {
                self.timing_small.as_ref().unwrap_or(&self.timing)
            }
            _ => &self.timing,
        }
    }

    /// Power parameters under the given variant selection (the low-slope
    /// replica costs 30% more power; the downsized queue saves some).
    pub fn power_params(&self, variants: &VariantSelection) -> SubsystemPowerParams {
        let factor = match self.descriptor.id {
            SubsystemId::IntAlu if variants.int_fu == FuChoice::LowSlope => {
                LOW_SLOPE_POWER_AREA_FACTOR
            }
            SubsystemId::FpUnit if variants.fp_fu == FuChoice::LowSlope => {
                LOW_SLOPE_POWER_AREA_FACTOR
            }
            SubsystemId::IntQueue if variants.int_queue == QueueChoice::Small => {
                SMALL_QUEUE_POWER_FACTOR
            }
            SubsystemId::FpQueue if variants.fp_queue == QueueChoice::Small => {
                SMALL_QUEUE_POWER_FACTOR
            }
            _ => 1.0,
        };
        SubsystemPowerParams {
            kdyn_w: self.power.kdyn_w * factor,
            ksta_nom_w: self.power.ksta_nom_w * factor,
            ..self.power
        }
    }
}

/// Per-subsystem result of evaluating one candidate configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubsystemEvaluation {
    /// Steady-state temperature, Celsius.
    pub t_c: f64,
    /// Total power, watts.
    pub power_w: f64,
    /// Contribution to the per-instruction error rate (`rho_i * PE_i`).
    pub pe: f64,
}

/// Whole-core result of evaluating one candidate configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreEvaluation {
    /// Per-subsystem detail, indexed by [`SubsystemId::index`].
    pub subsystems: Vec<SubsystemEvaluation>,
    /// Core + caches + uncore + checker power, watts.
    pub total_power_w: f64,
    /// Total errors per instruction at the evaluated frequency.
    pub pe_per_instruction: f64,
    /// Hottest subsystem temperature, Celsius.
    pub max_t_c: f64,
}

/// Error: a candidate configuration is physically infeasible (thermal
/// runaway in some subsystem).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InfeasibleConfig {
    /// The subsystem that diverged.
    pub subsystem: SubsystemId,
}

impl std::fmt::Display for InfeasibleConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thermal runaway in subsystem {}", self.subsystem)
    }
}

impl std::error::Error for InfeasibleConfig {}

/// One core of a manufactured chip.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreModel {
    index: usize,
    subsystems: Vec<SubsystemState>,
}

impl CoreModel {
    /// Core index on the chip (0..=3).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The state of one subsystem.
    pub fn subsystem(&self, id: SubsystemId) -> &SubsystemState {
        &self.subsystems[id.index()]
    }

    /// All subsystems in canonical order.
    pub fn subsystems(&self) -> &[SubsystemState] {
        &self.subsystems
    }

    /// The variation-safe frequency of this core at nominal conditions:
    /// the largest frequency at which every subsystem still meets its own
    /// sign-off criterion (its `design_pe`), **with the design guardband
    /// preserved**. This is what a conventionally clocked `Baseline`
    /// processor must run at; on a no-variation chip it equals the rated
    /// nominal frequency by construction.
    pub fn fvar_nominal(&self, _config: &EvalConfig) -> GHz {
        let cond = OperatingConditions::nominal();
        let physical = self
            .subsystems
            .iter()
            .map(|s| {
                s.timing(&VariantSelection::default())
                    .max_frequency(&cond, s.design_pe())
                    .get()
            })
            .fold(f64::INFINITY, f64::min);
        GHz::raw(physical / (1.0 + eval_timing::DESIGN_GUARDBAND))
    }

    /// Evaluates a candidate configuration: per-subsystem operating points
    /// (`f` shared, per-subsystem `Vdd`/`Vbb`), activity factors `alpha`
    /// (accesses/cycle, for power) and `rho` (accesses/instruction, for
    /// error weighting), and the structure variants.
    ///
    /// Returns power, temperature, and error-rate totals; constraint
    /// checking is the caller's job (the optimizers treat different
    /// violations differently).
    ///
    /// # Errors
    ///
    /// Returns [`InfeasibleConfig`] on thermal runaway.
    ///
    /// # Panics
    ///
    /// Panics if `settings` has the wrong length.
    // The argument list mirrors the controller's sensed inputs (§4.1);
    // bundling them would only rename the problem.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate(
        &self,
        config: &EvalConfig,
        th_c: f64,
        f: GHz,
        settings: &[(f64, f64)],
        alpha: &[f64; N_SUBSYSTEMS],
        rho: &[f64; N_SUBSYSTEMS],
        variants: &VariantSelection,
    ) -> Result<CoreEvaluation, InfeasibleConfig> {
        let plan = self.evaluation_plan(variants);
        plan.evaluate(config, th_c, f, settings, alpha, rho)
    }

    /// Resolves the per-subsystem invariants of [`evaluate`] — the
    /// variant-selected power parameters and timing models — once, so a
    /// probe loop (retuning, the runtime controller) can evaluate many
    /// candidate frequencies without re-resolving them per call.
    ///
    /// [`evaluate`]: CoreModel::evaluate
    pub fn evaluation_plan(&self, variants: &VariantSelection) -> CoreEvalPlan<'_> {
        CoreEvalPlan {
            entries: self
                .subsystems
                .iter()
                .map(|s| (s.id(), s.power_params(variants), s.timing(variants)))
                .collect(),
        }
    }
}

/// The per-subsystem invariants of [`CoreModel::evaluate`] for one fixed
/// variant selection, resolved once (see
/// [`CoreModel::evaluation_plan`]).
#[derive(Debug, Clone)]
pub struct CoreEvalPlan<'a> {
    entries: Vec<(SubsystemId, SubsystemPowerParams, &'a StageTiming)>,
}

impl CoreEvalPlan<'_> {
    /// [`CoreModel::evaluate`] with the invariants pre-resolved; identical
    /// results, fewer per-call lookups.
    ///
    /// # Errors
    ///
    /// Returns [`InfeasibleConfig`] on thermal runaway.
    ///
    /// # Panics
    ///
    /// Panics if `settings` has the wrong length.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate(
        &self,
        config: &EvalConfig,
        th_c: f64,
        f: GHz,
        settings: &[(f64, f64)],
        alpha: &[f64; N_SUBSYSTEMS],
        rho: &[f64; N_SUBSYSTEMS],
    ) -> Result<CoreEvaluation, InfeasibleConfig> {
        assert_eq!(settings.len(), N_SUBSYSTEMS, "one (Vdd, Vbb) per subsystem");
        let mut subsystems = Vec::with_capacity(N_SUBSYSTEMS);
        let mut total_power = config.uncore_power_w(f) + config.checker_w;
        let mut total_pe = 0.0;
        let mut max_t = th_c;
        for (i, (id, params, timing)) in self.entries.iter().enumerate() {
            // Settings come off the discrete actuator ladders, which are
            // validated at construction; `raw` skips re-validation per call.
            let (vdd, vbb) = settings[i];
            let op = OperatingPoint {
                f,
                vdd: Volts::raw(vdd),
                vbb: Volts::raw(vbb),
            };
            let env = ThermalEnvironment {
                th_c,
                alpha_f: alpha[i],
            };
            let sol = solve_thermal(params, &env, &op, &config.device)
                .map_err(|_| InfeasibleConfig { subsystem: *id })?;
            let cond = OperatingConditions {
                vdd: Volts::raw(vdd),
                vbb: Volts::raw(vbb),
                t_c: sol.t_c,
            };
            let pe = rho[i] * timing.pe_access(f, &cond);
            total_power += sol.total_w();
            total_pe += pe;
            max_t = max_t.max(sol.t_c);
            subsystems.push(SubsystemEvaluation {
                t_c: sol.t_c,
                power_w: sol.total_w(),
                pe,
            });
        }
        Ok(CoreEvaluation {
            subsystems,
            total_power_w: total_power,
            pe_per_instruction: total_pe,
            max_t_c: max_t,
        })
    }
}

/// A chip generator that amortizes the one-time Cholesky factorization of
/// the variation model over many sampled chips — use this (not repeated
/// [`ChipModel::sample`] calls) for populations.
#[derive(Debug, Clone)]
pub struct ChipFactory {
    config: EvalConfig,
    model: VariationModel,
}

impl ChipFactory {
    /// Builds the factory (performs the correlation-matrix factorization).
    pub fn new(config: EvalConfig) -> Self {
        let model = VariationModel::new(config.grid, config.variation);
        Self { config, model }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// Manufactures chip `seed` (cheap once the factory exists).
    pub fn chip(&self, seed: u64) -> ChipModel {
        ChipModel::from_map(&self.config, &self.model.sample_chip(seed))
    }

    /// [`ChipFactory::chip`] under a `fab` span, emitting one
    /// tester-measurement event per subsystem (the §4.1 tester flow that
    /// calibrates the per-subsystem power constants).
    pub fn chip_traced(&self, seed: u64, tracer: eval_trace::Tracer<'_>) -> ChipModel {
        let _span = tracer.span("fab");
        let chip = self.chip(seed);
        if tracer.enabled() {
            let variants = VariantSelection::default();
            for (core_idx, core) in chip.cores().iter().enumerate() {
                for sub in core.subsystems() {
                    tracer.count(eval_trace::names::TESTER_MEASUREMENTS);
                    tracer.event(|| eval_trace::Event::TesterMeasurement {
                        subsystem: format!("core{core_idx}/{}", sub.id()),
                        vt0_eff: sub.vt0(),
                        vt0_mean: sub.timing(&variants).measured_vt0(),
                    });
                }
            }
        }
        chip
    }

    /// The no-variation reference chip.
    pub fn no_variation(&self) -> ChipModel {
        ChipModel::no_variation(&self.config)
    }

    /// Iterates over a population of `count` chips derived from `base_seed`
    /// (the paper's 100-chip Monte Carlo protocol).
    pub fn population(
        &self,
        base_seed: u64,
        count: usize,
    ) -> impl Iterator<Item = ChipModel> + '_ {
        (0..count as u64).map(move |i| self.chip(base_seed.wrapping_add(i * 0x9E37)))
    }
}

/// A manufactured chip: four cores sampled from one variation map.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipModel {
    seed: u64,
    cores: Vec<CoreModel>,
}

impl ChipModel {
    /// Samples chip `seed` from the configured variation model.
    ///
    /// Convenience for one-off chips: this factorizes the correlation
    /// matrix every call. Prefer [`ChipFactory`] when sampling many chips.
    pub fn sample(config: &EvalConfig, seed: u64) -> Self {
        ChipFactory::new(config.clone()).chip(seed)
    }

    /// Builds a chip from an existing variation map.
    pub fn from_map(config: &EvalConfig, map: &ChipMap) -> Self {
        let cores = (0..config.cores)
            .map(|core_idx| {
                let floorplan = Floorplan::new(config.grid, core_idx);
                let subsystems = SubsystemDescriptor::all()
                    .into_iter()
                    .map(|desc| {
                        let cells = floorplan.cells(desc.id);
                        let mut class = PathClass::for_kind(desc.kind);
                        if desc.id.is_replicable_fu() || desc.id.is_issue_queue() {
                            class.design_pe = eval_timing::AGGRESSIVE_DESIGN_PE;
                        }
                        let timing = StageTiming::from_chip(
                            &class,
                            config.t_nominal_ns(),
                            map,
                            &cells,
                            config.device,
                            class.gates_per_path,
                        );
                        SubsystemState::build(desc, timing, config, class.design_pe)
                    })
                    .collect();
                CoreModel {
                    index: core_idx,
                    subsystems,
                }
            })
            .collect();
        Self {
            seed: map.seed,
            cores,
        }
    }

    /// The idealized no-variation reference chip (`NoVar` environment):
    /// every subsystem sits exactly at nominal process parameters.
    pub fn no_variation(config: &EvalConfig) -> Self {
        let cores = (0..config.cores)
            .map(|core_idx| {
                let subsystems = SubsystemDescriptor::all()
                    .into_iter()
                    .map(|desc| {
                        let mut class = PathClass::for_kind(desc.kind);
                        if desc.id.is_replicable_fu() || desc.id.is_issue_queue() {
                            class.design_pe = eval_timing::AGGRESSIVE_DESIGN_PE;
                        }
                        let dist = class.nominal_distribution(config.t_nominal_ns());
                        let timing = StageTiming::from_parts(
                            dist,
                            &[(config.device.vt_nominal, config.device.leff_nominal)],
                            config.device,
                        );
                        SubsystemState::build(desc, timing, config, class.design_pe)
                    })
                    .collect();
                CoreModel {
                    index: core_idx,
                    subsystems,
                }
            })
            .collect();
        Self { seed: u64::MAX, cores }
    }

    /// The seed this chip was manufactured from (`u64::MAX` for `NoVar`).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// One core.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn core(&self, i: usize) -> &CoreModel {
        &self.cores[i]
    }

    /// All cores.
    pub fn cores(&self) -> &[CoreModel] {
        &self.cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn config() -> EvalConfig {
        EvalConfig::micro08()
    }

    fn factory() -> &'static ChipFactory {
        static FACTORY: OnceLock<ChipFactory> = OnceLock::new();
        FACTORY.get_or_init(|| ChipFactory::new(EvalConfig::micro08()))
    }

    fn uniform(v: f64) -> [f64; N_SUBSYSTEMS] {
        [v; N_SUBSYSTEMS]
    }

    #[test]
    fn novar_core_reaches_nominal_frequency() {
        let cfg = config();
        let chip = ChipModel::no_variation(&cfg);
        let fvar = chip.core(0).fvar_nominal(&cfg).get();
        assert!(
            (fvar - cfg.f_nominal_ghz).abs() / cfg.f_nominal_ghz < 0.03,
            "NoVar fvar = {fvar}"
        );
    }

    #[test]
    fn varied_chips_lose_frequency_on_average() {
        let cfg = config();
        let mut total = 0.0;
        let n = 8;
        for seed in 0..n {
            let chip = factory().chip(seed);
            total += chip.core(0).fvar_nominal(&cfg).get();
        }
        let mean = total / n as f64;
        assert!(
            mean < cfg.f_nominal_ghz * 0.95,
            "mean fvar {mean} should be well below nominal"
        );
    }

    #[test]
    fn evaluation_reports_power_temperature_and_errors() {
        let cfg = config();
        let chip = factory().chip(3);
        let core = chip.core(0);
        let settings = vec![(1.0, 0.0); N_SUBSYSTEMS];
        let eval = core
            .evaluate(
                &cfg,
                cfg.th_c,
                GHz::raw(4.2),
                &settings,
                &uniform(0.5),
                &uniform(0.5),
                &VariantSelection::default(),
            )
            .unwrap();
        assert!(eval.total_power_w > 5.0 && eval.total_power_w < 60.0);
        assert!(eval.max_t_c > cfg.th_c);
        assert!(eval.pe_per_instruction >= 0.0);
        assert_eq!(eval.subsystems.len(), N_SUBSYSTEMS);
    }

    #[test]
    fn higher_frequency_raises_errors_and_power() {
        let cfg = factory().config().clone();
        let chip = factory().chip(5);
        let core = chip.core(0);
        let settings = vec![(1.0, 0.0); N_SUBSYSTEMS];
        let ev = |f: f64| {
            core.evaluate(
                &cfg,
                cfg.th_c,
                GHz::raw(f),
                &settings,
                &uniform(0.5),
                &uniform(0.5),
                &VariantSelection::default(),
            )
            .unwrap()
        };
        let lo = ev(3.4);
        let hi = ev(4.6);
        assert!(hi.total_power_w > lo.total_power_w);
        assert!(hi.pe_per_instruction >= lo.pe_per_instruction);
    }

    #[test]
    fn low_slope_fu_helps_timing_but_costs_power() {
        let chip = factory().chip(7);
        let alu = chip.core(0).subsystem(SubsystemId::IntAlu);
        let normal = VariantSelection::default();
        let tilted = VariantSelection {
            int_fu: FuChoice::LowSlope,
            ..normal
        };
        let cond = OperatingConditions::nominal();
        let f_normal = alu.timing(&normal).max_frequency(&cond, 1e-9);
        let f_tilted = alu.timing(&tilted).max_frequency(&cond, 1e-9);
        assert!(f_tilted > f_normal);
        assert!(alu.power_params(&tilted).kdyn_w > alu.power_params(&normal).kdyn_w);
    }

    #[test]
    fn small_queue_shifts_curve_right_and_saves_power() {
        let chip = factory().chip(9);
        let q = chip.core(0).subsystem(SubsystemId::IntQueue);
        let normal = VariantSelection::default();
        let small = VariantSelection {
            int_queue: QueueChoice::Small,
            ..normal
        };
        let cond = OperatingConditions::nominal();
        assert!(
            q.timing(&small).max_frequency(&cond, 1e-9)
                > q.timing(&normal).max_frequency(&cond, 1e-9)
        );
        assert!(q.power_params(&small).kdyn_w < q.power_params(&normal).kdyn_w);
    }

    #[test]
    fn variants_do_not_touch_other_subsystems() {
        let chip = factory().chip(11);
        let dcache = chip.core(0).subsystem(SubsystemId::Dcache);
        let a = VariantSelection::default();
        let b = VariantSelection {
            int_fu: FuChoice::LowSlope,
            fp_fu: FuChoice::LowSlope,
            int_queue: QueueChoice::Small,
            fp_queue: QueueChoice::Small,
        };
        assert_eq!(dcache.timing(&a), dcache.timing(&b));
        assert_eq!(dcache.power_params(&a), dcache.power_params(&b));
    }

    #[test]
    fn chips_are_reproducible() {
        assert_eq!(factory().chip(42), factory().chip(42));
    }
}
