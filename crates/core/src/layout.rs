//! Core floorplan: mapping subsystems onto variation-grid cells.
//!
//! The chip grid (default 32 x 32) is split into four core quadrants; each
//! quadrant is tiled with the 15 subsystems. Footprint sizes are roughly
//! proportional to real structure areas, so big SRAM arrays average over
//! more systematic-variation cells than small functional units.

use eval_uarch::SubsystemId;
use eval_variation::ChipGrid;

/// A subsystem's rectangle within a 16 x 16 core quadrant, in quadrant-local
/// cell coordinates `[x0, x1) x [y0, y1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuadrantRect {
    /// Left edge (inclusive).
    pub x0: usize,
    /// Top edge (inclusive).
    pub y0: usize,
    /// Right edge (exclusive).
    pub x1: usize,
    /// Bottom edge (exclusive).
    pub y1: usize,
}

/// The floorplan of one core within the chip grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    grid: ChipGrid,
    core_index: usize,
}

/// Quadrant side in cells (the default grid is 32 x 32, cores get 16 x 16).
const QUADRANT: usize = 16;

/// The subsystem tiling of a quadrant (fractions of the 16 x 16 quadrant).
fn rect_of(id: SubsystemId) -> QuadrantRect {
    use SubsystemId::*;
    let (x0, y0, x1, y1) = match id {
        Icache => (0, 0, 6, 6),
        Itlb => (6, 0, 8, 2),
        BranchPred => (6, 2, 8, 6),
        Decode => (8, 0, 12, 3),
        IntMap => (12, 0, 14, 3),
        FpMap => (14, 0, 16, 3),
        IntQueue => (8, 3, 12, 6),
        FpQueue => (12, 3, 16, 6),
        IntReg => (0, 6, 3, 9),
        FpReg => (3, 6, 6, 9),
        IntAlu => (6, 6, 10, 9),
        FpUnit => (10, 6, 16, 9),
        LdStQueue => (0, 9, 4, 12),
        Dtlb => (4, 9, 6, 12),
        Dcache => (6, 9, 16, 16),
    };
    QuadrantRect { x0, y0, x1, y1 }
}

impl Floorplan {
    /// Floorplan of core `core_index` (0..=3) on `grid`.
    ///
    /// # Panics
    ///
    /// Panics if `core_index > 3` or the grid is smaller than 32 x 32.
    pub fn new(grid: ChipGrid, core_index: usize) -> Self {
        assert!(core_index < 4, "the CMP has four cores");
        assert!(
            grid.nx() >= 2 * QUADRANT && grid.ny() >= 2 * QUADRANT,
            "grid must be at least 32 x 32"
        );
        Self { grid, core_index }
    }

    /// Grid-cell origin of this core's quadrant.
    fn origin(&self) -> (usize, usize) {
        let qx = self.core_index % 2;
        let qy = self.core_index / 2;
        // Scale the quadrant to the actual grid (supports larger grids).
        (qx * self.grid.nx() / 2, qy * self.grid.ny() / 2)
    }

    /// Flat grid-cell indices covered by `id` in this core.
    pub fn cells(&self, id: SubsystemId) -> Vec<usize> {
        let r = rect_of(id);
        let (ox, oy) = self.origin();
        let sx = self.grid.nx() / 2;
        let sy = self.grid.ny() / 2;
        // Scale the 16 x 16 design rectangle to the quadrant size.
        let scale = |v: usize, extent: usize| v * extent / QUADRANT;
        let (x0, x1) = (ox + scale(r.x0, sx), ox + scale(r.x1, sx).max(scale(r.x0, sx) + 1));
        let (y0, y1) = (oy + scale(r.y0, sy), oy + scale(r.y1, sy).max(scale(r.y0, sy) + 1));
        self.grid.rect_cells(x0, y0, x1, y1)
    }

    /// Relative area of `id` (cells over total quadrant cells).
    pub fn area_fraction(&self, id: SubsystemId) -> f64 {
        let quadrant_cells = (self.grid.nx() / 2) * (self.grid.ny() / 2);
        self.cells(id).len() as f64 / quadrant_cells as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsystem_rects_do_not_overlap() {
        let g = ChipGrid::default();
        let fp = Floorplan::new(g, 0);
        let mut seen = std::collections::BTreeSet::new();
        for id in SubsystemId::ALL {
            for c in fp.cells(id) {
                assert!(seen.insert(c), "cell {c} covered twice ({id})");
            }
        }
    }

    #[test]
    fn cores_occupy_distinct_quadrants() {
        let g = ChipGrid::default();
        let mut all = std::collections::BTreeSet::new();
        for core in 0..4 {
            let fp = Floorplan::new(g, core);
            for id in SubsystemId::ALL {
                for c in fp.cells(id) {
                    assert!(all.insert(c), "cell {c} shared between cores");
                }
            }
        }
    }

    #[test]
    fn caches_are_biggest() {
        let fp = Floorplan::new(ChipGrid::default(), 0);
        let dcache = fp.area_fraction(SubsystemId::Dcache);
        for id in SubsystemId::ALL {
            if id != SubsystemId::Dcache {
                assert!(dcache >= fp.area_fraction(id), "{id} bigger than dcache");
            }
        }
        assert!(fp.area_fraction(SubsystemId::Itlb) < 0.05);
    }

    #[test]
    fn every_subsystem_has_cells() {
        let fp = Floorplan::new(ChipGrid::default(), 3);
        for id in SubsystemId::ALL {
            assert!(!fp.cells(id).is_empty(), "{id} has no cells");
        }
    }

    #[test]
    #[should_panic(expected = "four cores")]
    fn rejects_fifth_core() {
        Floorplan::new(ChipGrid::default(), 4);
    }
}
