//! Static per-subsystem descriptors: kind, power constants, thermal
//! resistance.
//!
//! The dynamic-power budgets are calibrated so that a core plus its caches
//! consumes ≈25 W under a typical workload at the nominal 4 GHz / 1 V
//! (Figure 12's `NoVar` bar), with roughly three quarters dynamic and one
//! quarter leakage, distributed over subsystems in proportion to published
//! Wattch/CACTI-style breakdowns.

use eval_units::GHz;
use eval_timing::SubsystemKind;
use eval_uarch::SubsystemId;

/// Time-invariant properties of one subsystem type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubsystemDescriptor {
    /// Which subsystem.
    pub id: SubsystemId,
    /// Path-distribution class (memory / mixed / logic) from Figure 7(b).
    pub kind: SubsystemKind,
    /// Dynamic power in watts at full activity (`alpha_f = 1`), nominal
    /// voltage and frequency. `Kdyn` is derived from this.
    pub dyn_w_at_full_activity: f64,
    /// Leakage in watts at nominal `(Vt, Vdd, T)`.
    pub sta_nom_w: f64,
    /// Thermal resistance to the heat sink, C/W.
    pub rth_c_per_w: f64,
}

impl SubsystemDescriptor {
    /// Descriptor table for all 15 subsystems.
    pub fn all() -> [SubsystemDescriptor; 15] {
        use SubsystemId::*;
        use SubsystemKind::*;
        // (id, kind, dyn W @ alpha=1, leak W, Rth C/W)
        let rows: [(SubsystemId, SubsystemKind, f64, f64, f64); 15] = [
            (Dcache, Memory, 11.0, 1.30, 1.8),
            (Dtlb, Memory, 2.0, 0.17, 9.0),
            (FpQueue, Memory, 2.2, 0.30, 8.0),
            (FpReg, Memory, 3.4, 0.37, 8.5),
            (LdStQueue, Mixed, 4.4, 0.34, 8.0),
            (FpUnit, Logic, 2.8, 0.55, 7.0),
            (FpMap, Memory, 2.0, 0.20, 9.0),
            (IntAlu, Logic, 3.0, 0.50, 8.0),
            (IntReg, Memory, 3.0, 0.42, 8.5),
            (IntQueue, Mixed, 2.6, 0.48, 8.0),
            (IntMap, Memory, 2.6, 0.24, 9.0),
            (Itlb, Memory, 0.8, 0.14, 9.0),
            (Icache, Memory, 3.2, 1.10, 2.2),
            (BranchPred, Mixed, 2.0, 0.27, 7.5),
            (Decode, Logic, 2.2, 0.51, 7.0),
        ];
        rows.map(|(id, kind, dyn_w, sta_w, rth)| SubsystemDescriptor {
            id,
            kind,
            dyn_w_at_full_activity: dyn_w,
            sta_nom_w: sta_w,
            rth_c_per_w: rth,
        })
    }

    /// Descriptor for one subsystem.
    pub fn of(id: SubsystemId) -> SubsystemDescriptor {
        Self::all()[id.index()]
    }

    /// The `Kdyn` coefficient for `eval-power` (watts per unit activity at
    /// 1 V and 1 GHz), derived from the full-activity budget at nominal
    /// 4 GHz / 1 V.
    pub fn kdyn_w(&self, f_nominal: GHz) -> f64 {
        self.dyn_w_at_full_activity / f_nominal.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_all_subsystems_in_order() {
        for (i, d) in SubsystemDescriptor::all().iter().enumerate() {
            assert_eq!(d.id.index(), i);
        }
    }

    #[test]
    fn kinds_match_figure_7b() {
        use SubsystemKind::*;
        assert_eq!(SubsystemDescriptor::of(SubsystemId::Dcache).kind, Memory);
        assert_eq!(SubsystemDescriptor::of(SubsystemId::IntQueue).kind, Mixed);
        assert_eq!(SubsystemDescriptor::of(SubsystemId::IntAlu).kind, Logic);
        assert_eq!(SubsystemDescriptor::of(SubsystemId::FpUnit).kind, Logic);
        assert_eq!(SubsystemDescriptor::of(SubsystemId::BranchPred).kind, Mixed);
        let memory = SubsystemDescriptor::all()
            .iter()
            .filter(|d| d.kind == Memory)
            .count();
        assert_eq!(memory, 9);
    }

    #[test]
    fn power_budget_is_in_the_25w_ballpark() {
        // At typical activity (~0.45 average) the dynamic budget should be
        // in the high teens, leakage a few watts.
        let dyn_total: f64 = SubsystemDescriptor::all()
            .iter()
            .map(|d| d.dyn_w_at_full_activity)
            .sum();
        let sta_total: f64 = SubsystemDescriptor::all().iter().map(|d| d.sta_nom_w).sum();
        assert!((38.0..=52.0).contains(&dyn_total), "dyn = {dyn_total}");
        assert!((6.0..=9.0).contains(&sta_total), "sta = {sta_total}");
    }

    #[test]
    fn kdyn_derivation() {
        let d = SubsystemDescriptor::of(SubsystemId::IntAlu);
        let kdyn = d.kdyn_w(GHz::raw(4.0));
        // Pdyn at alpha=1, 1V, 4GHz recovers the budget.
        assert!((kdyn * 4.0 - d.dyn_w_at_full_activity).abs() < 1e-12);
    }
}
