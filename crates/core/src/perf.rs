//! The performance model of Equation 5.
//!
//! ```text
//! Perf(f) = f / (CPIcomp + mr * mp(f) + PE(f) * rp)
//! ```
//!
//! `CPIcomp`, `mr` and `rp` are frequency-independent to first order; the
//! observed miss penalty `mp` grows with frequency (memory latency is fixed
//! in nanoseconds) and `PE` grows steeply once past the error onset.

/// Frequency-independent performance inputs of one phase.
///
/// # Example
///
/// ```
/// use eval_core::PerfModel;
/// let m = PerfModel::new(1.0, 0.004, 52.0, 21.0);
/// // Error-free performance grows with frequency (sublinearly: memory
/// // time is fixed in nanoseconds)...
/// assert!(m.perf(4.4, 0.0) > m.perf(4.0, 0.0));
/// // ...but a high error rate erases the gain (Figure 2(a)).
/// assert!(m.perf(4.4, 0.05) < m.perf(4.0, 1e-6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfModel {
    /// Computation CPI (includes L1 misses that hit L2).
    pub cpi_comp: f64,
    /// L2 misses per instruction.
    pub mr: f64,
    /// Non-overlapped miss penalty in nanoseconds.
    pub mp_ns: f64,
    /// Error recovery penalty in cycles.
    pub rp_cycles: f64,
}

impl PerfModel {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if any component is negative or `cpi_comp` is zero.
    pub fn new(cpi_comp: f64, mr: f64, mp_ns: f64, rp_cycles: f64) -> Self {
        assert!(cpi_comp > 0.0, "computation CPI must be positive");
        assert!(
            mr >= 0.0 && mp_ns >= 0.0 && rp_cycles >= 0.0,
            "penalties must be non-negative"
        );
        Self {
            cpi_comp,
            mr,
            mp_ns,
            rp_cycles,
        }
    }

    /// Total CPI at `f_ghz` with error rate `pe` (errors/instruction).
    // lint:allow(unit-safety): hottest inner loop of the optimizer sweep;
    // takes ladder-validated plain floats to avoid per-candidate wrapping.
    pub fn cpi(&self, f_ghz: f64, pe: f64) -> f64 {
        self.cpi_comp + self.mr * self.mp_ns * f_ghz + pe * self.rp_cycles
    }

    /// Performance in billions of instructions per second at `f_ghz` with
    /// error rate `pe`.
    ///
    /// # Panics
    ///
    /// Panics if `f_ghz <= 0` or `pe` is not in `[0, 1]`.
    // lint:allow(unit-safety): hottest inner loop of the optimizer sweep;
    // takes ladder-validated plain floats to avoid per-candidate wrapping.
    pub fn perf(&self, f_ghz: f64, pe: f64) -> f64 {
        assert!(f_ghz > 0.0, "frequency must be positive");
        assert!((0.0..=1.0).contains(&pe), "PE must be a probability");
        f_ghz / self.cpi(f_ghz, pe)
    }

    /// The additive CPI components at `f_ghz` with error rate `pe` —
    /// observability companion to [`PerfModel::cpi`], emitted with each
    /// controller decision.
    // lint:allow(unit-safety): mirrors `cpi`, same ladder-validated floats.
    pub fn breakdown(&self, f_ghz: f64, pe: f64) -> CpiBreakdown {
        CpiBreakdown {
            comp: self.cpi_comp,
            mem: self.mr * self.mp_ns * f_ghz,
            recovery: pe * self.rp_cycles,
        }
    }
}

/// The three additive CPI components of Equation 5 at one operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpiBreakdown {
    /// Computation CPI (frequency-independent).
    pub comp: f64,
    /// Memory CPI: `mr * mp(f)` grows with frequency.
    pub mem: f64,
    /// Error-recovery CPI: `PE * rp`.
    pub recovery: f64,
}

impl CpiBreakdown {
    /// Sum of the components — equals [`PerfModel::cpi`].
    pub fn total(&self) -> f64 {
        self.comp + self.mem + self.recovery
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PerfModel {
        PerfModel::new(1.0, 0.005, 52.0, 21.0)
    }

    #[test]
    fn error_free_performance_grows_sublinearly_with_f() {
        let m = model();
        let p4 = m.perf(4.0, 0.0);
        let p5 = m.perf(5.0, 0.0);
        assert!(p5 > p4);
        // Memory time fixed in ns means < linear scaling.
        assert!(p5 / p4 < 5.0 / 4.0);
    }

    #[test]
    fn small_pe_is_nearly_free_large_pe_kills_performance() {
        // §4.1: PE = 1e-4 makes CPIrec negligible, PE = 1e-1 makes Perf drop.
        let m = model();
        let clean = m.perf(4.0, 0.0);
        let ok = m.perf(4.0, 1e-4);
        let bad = m.perf(4.0, 1e-1);
        assert!((clean - ok) / clean < 0.002);
        assert!(bad < clean * 0.55);
    }

    #[test]
    fn memory_bound_phase_gains_less_from_frequency() {
        let compute = PerfModel::new(1.0, 0.0005, 52.0, 21.0);
        let membound = PerfModel::new(1.0, 0.02, 52.0, 21.0);
        let gain = |m: &PerfModel| m.perf(5.0, 0.0) / m.perf(4.0, 0.0);
        assert!(gain(&compute) > gain(&membound));
    }

    #[test]
    fn cpi_decomposes() {
        let m = model();
        let f = 4.4;
        let pe = 1e-3;
        let total = m.cpi(f, pe);
        assert!((total - (1.0 + 0.005 * 52.0 * f + pe * 21.0)).abs() < 1e-12);
    }

    #[test]
    fn breakdown_components_sum_to_cpi() {
        let m = model();
        let b = m.breakdown(4.4, 1e-3);
        assert!((b.total() - m.cpi(4.4, 1e-3)).abs() < 1e-12);
        assert!((b.comp - 1.0).abs() < 1e-12);
        assert!((b.mem - 0.005 * 52.0 * 4.4).abs() < 1e-12);
        assert!((b.recovery - 1e-3 * 21.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_invalid_pe() {
        model().perf(4.0, 1.5);
    }
}
