//! Global configuration of the modeled system (Figure 7(a)).

use eval_units::GHz;
use eval_power::Constraints;
use eval_variation::{ChipGrid, DeviceParams, VariationParams};

/// All the knobs of the evaluation setup in one place.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalConfig {
    /// Nominal (no-variation) core frequency in GHz.
    pub f_nominal_ghz: f64,
    /// Number of cores on the CMP.
    pub cores: usize,
    /// Device-physics constants.
    pub device: DeviceParams,
    /// Process-variation statistics.
    pub variation: VariationParams,
    /// Operating constraints.
    pub constraints: Constraints,
    /// Chip grid for the variation maps.
    pub grid: ChipGrid,
    /// Heat-sink temperature assumed during campaigns, Celsius.
    pub th_c: f64,
    /// Core-level "uncore" (L2 + clock tree + interconnect) dynamic power
    /// in watts at nominal frequency and voltage; scales with `f * Vdd^2`.
    pub uncore_dyn_w: f64,
    /// Uncore leakage in watts (not adapted).
    pub uncore_sta_w: f64,
    /// Checker power in watts (runs at a fixed safe point).
    pub checker_w: f64,
}

impl EvalConfig {
    /// The MICRO 2008 evaluation setup: 45 nm, 4 GHz and 1 V nominal,
    /// four cores, `PMAX` 30 W / `TMAX` 85 C / `PEMAX` 1e-4.
    pub fn micro08() -> Self {
        Self {
            f_nominal_ghz: 4.0,
            cores: 4,
            device: DeviceParams::micro08(),
            variation: VariationParams::micro08(),
            constraints: Constraints::micro08(),
            grid: ChipGrid::default(),
            th_c: 60.0,
            uncore_dyn_w: 3.5,
            uncore_sta_w: 2.0,
            checker_w: 1.5,
        }
    }

    /// Nominal clock period in nanoseconds.
    pub fn t_nominal_ns(&self) -> f64 {
        1.0 / self.f_nominal_ghz
    }

    /// Uncore power (W) at core frequency `f` (nominal-voltage domain).
    pub fn uncore_power_w(&self, f: GHz) -> f64 {
        self.uncore_dyn_w * f.get() / self.f_nominal_ghz + self.uncore_sta_w
    }
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self::micro08()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_period_is_250ps() {
        assert!((EvalConfig::micro08().t_nominal_ns() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn uncore_power_scales_with_frequency() {
        let c = EvalConfig::micro08();
        assert!(c.uncore_power_w(GHz::raw(5.0)) > c.uncore_power_w(GHz::raw(4.0)));
        assert!((c.uncore_power_w(GHz::raw(4.0)) - (c.uncore_dyn_w + c.uncore_sta_w)).abs() < 1e-12);
    }
}
