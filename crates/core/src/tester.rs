//! The manufacturer's tester flow (§4.1): "Vt0 is variation-dependent, and
//! is measured on a tester at a known T by suspending the clocks and
//! individually powering on each of the subsystems. The current flowing in
//! is the leakage of that subsystem, from which Vt0 can be computed
//! according to Equation 8."
//!
//! Because leakage is a convex (exponential) function of `-Vt`, the
//! leakage-implied effective `Vt0` sits slightly *below* the footprint's
//! arithmetic mean — the leaky cells dominate the measured current. Using
//! the implied value (as the real flow would) makes the stored power
//! constants reproduce the subsystem's true leakage exactly at the test
//! point.

use eval_timing::StageTiming;
use eval_trace::{names, Event, Tracer};
use eval_variation::{leakage_factor, DeviceParams};

/// Simulated tester measurement: powers the subsystem at a known
/// temperature/voltage, observes its leakage, and inverts Equation 8 for
/// the effective `Vt0`.
///
/// The returned value satisfies
/// `leakage_factor(vt0_eff) = mean_cells(leakage_factor(vt0_cell))`.
///
/// # Panics
///
/// Panics if the stage has no cells (cannot happen for stages built by
/// this workspace).
pub fn measure_vt0(timing: &StageTiming, device: &DeviceParams) -> f64 {
    let t_test = device.t_ref_c;
    let vdd_test = device.vdd_nominal;
    let mut total = 0.0;
    let mut n = 0usize;
    for (vt0, _leff) in timing.cell_params() {
        total += leakage_factor(device, vt0, vdd_test, t_test);
        n += 1;
    }
    assert!(n > 0, "stage must have at least one cell");
    let observed = total / n as f64;

    // Invert the monotone leakage(Vt) relation by bisection.
    let (mut lo, mut hi) = (0.0f64, 1.0f64); // volts
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if leakage_factor(device, mid, vdd_test, t_test) > observed {
            // Too leaky: threshold is higher than mid.
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// [`measure_vt0`] with a [`TesterMeasurement`](Event::TesterMeasurement)
/// event per call, labelled with the subsystem being probed.
pub fn measure_vt0_traced(
    timing: &StageTiming,
    device: &DeviceParams,
    label: &str,
    tracer: Tracer<'_>,
) -> f64 {
    let vt0_eff = measure_vt0(timing, device);
    tracer.count(names::TESTER_MEASUREMENTS);
    tracer.event(|| Event::TesterMeasurement {
        subsystem: label.to_string(),
        vt0_eff,
        vt0_mean: timing.measured_vt0(),
    });
    vt0_eff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::ChipFactory;
    use crate::config::EvalConfig;
    use crate::chip::VariantSelection;
    use eval_uarch::SubsystemId;
    use std::sync::OnceLock;

    fn factory() -> &'static ChipFactory {
        static F: OnceLock<ChipFactory> = OnceLock::new();
        F.get_or_init(|| ChipFactory::new(EvalConfig::micro08()))
    }

    #[test]
    fn implied_vt0_reproduces_observed_leakage() {
        let cfg = factory().config().clone();
        let chip = factory().chip(21);
        let timing = chip
            .core(0)
            .subsystem(SubsystemId::Dcache)
            .timing(&VariantSelection::default());
        let vt0 = measure_vt0(timing, &cfg.device);
        // Round trip: the implied Vt0's leakage equals the mean cell leakage.
        let mean_leak = timing
            .cell_params()
            .map(|(v, _)| eval_variation::leakage_factor(&cfg.device, v, 1.0, cfg.device.t_ref_c))
            .sum::<f64>()
            / timing.cell_count() as f64;
        let implied = eval_variation::leakage_factor(&cfg.device, vt0, 1.0, cfg.device.t_ref_c);
        assert!(
            (implied / mean_leak - 1.0).abs() < 1e-9,
            "implied {implied} vs observed {mean_leak}"
        );
    }

    #[test]
    fn implied_vt0_sits_at_or_below_the_arithmetic_mean() {
        // Jensen: exp is convex, so the leakage-weighted effective Vt is
        // pulled toward the leaky (low-Vt) cells.
        let cfg = factory().config().clone();
        for seed in [22, 23, 24] {
            let chip = factory().chip(seed);
            for id in [SubsystemId::Dcache, SubsystemId::IntAlu, SubsystemId::Icache] {
                let timing = chip.core(0).subsystem(id).timing(&VariantSelection::default());
                let implied = measure_vt0(timing, &cfg.device);
                let mean = timing.measured_vt0();
                assert!(
                    implied <= mean + 1e-12,
                    "{id}: implied {implied} above mean {mean}"
                );
                // ...but within a few sigma of it.
                assert!(mean - implied < 0.02, "{id}: gap {}", mean - implied);
            }
        }
    }

    #[test]
    fn uniform_footprint_measures_exactly() {
        // On the no-variation chip every cell is nominal, so the tester
        // recovers the nominal threshold exactly.
        let cfg = factory().config().clone();
        let chip = factory().no_variation();
        let timing = chip
            .core(0)
            .subsystem(SubsystemId::Decode)
            .timing(&VariantSelection::default());
        let vt0 = measure_vt0(timing, &cfg.device);
        assert!((vt0 - cfg.device.vt_nominal).abs() < 1e-9);
    }
}
