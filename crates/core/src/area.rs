//! Area accounting (Figure 7(d)).

use crate::env::Environment;

/// Additional area required by the EVAL support, as a percentage of the
/// processor area.
///
/// # Example
///
/// ```
/// use eval_core::{AreaBreakdown, Environment};
/// let a = AreaBreakdown::for_environment(&Environment::TS_ASV_Q_FU);
/// assert!((a.total_pct() - 10.6).abs() < 1e-9); // Figure 7(d)
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// Diva checker with its L0 caches and retirement queue.
    pub checker_pct: f64,
    /// ASV support (chip-external supplies; negligible).
    pub asv_pct: f64,
    /// ABB support (on-chip bias generators and networks).
    pub abb_pct: f64,
    /// Replicated integer ALU block.
    pub int_alu_replica_pct: f64,
    /// Replicated FP adder + multiplier.
    pub fp_replica_pct: f64,
    /// Issue-queue resizing (transmission gates; negligible).
    pub queue_resize_pct: f64,
    /// Hardware phase detector.
    pub phase_detector_pct: f64,
    /// Temperature/power sensors.
    pub sensors_pct: f64,
}

impl AreaBreakdown {
    /// Figure 7(d) values for an environment's enabled techniques. The
    /// phase detector and sensors are part of the dynamic-adaptation
    /// controller system and are included whenever any technique needs
    /// runtime decisions (i.e. anything beyond `Baseline`/`NoVar`).
    pub fn for_environment(env: &Environment) -> Self {
        let adaptive = env.checker || env.has_voltage_control() || env.queue || env.fu_replication;
        Self {
            checker_pct: if env.checker { 7.0 } else { 0.0 },
            asv_pct: 0.0,
            abb_pct: if env.abb { 2.0 } else { 0.0 },
            int_alu_replica_pct: if env.fu_replication { 0.7 } else { 0.0 },
            fp_replica_pct: if env.fu_replication { 2.5 } else { 0.0 },
            queue_resize_pct: 0.0,
            phase_detector_pct: if adaptive { 0.3 } else { 0.0 },
            sensors_pct: if adaptive { 0.1 } else { 0.0 },
        }
    }

    /// Total overhead percentage.
    pub fn total_pct(&self) -> f64 {
        self.checker_pct
            + self.asv_pct
            + self.abb_pct
            + self.int_alu_replica_pct
            + self.fp_replica_pct
            + self.queue_resize_pct
            + self.phase_detector_pct
            + self.sensors_pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preferred_configuration_costs_10_6_percent() {
        // TS+ASV+Q+FU: checker 7.0 + replicas 0.7 + 2.5 + detector 0.3 +
        // sensors 0.1 = 10.6 (Figure 7(d)).
        let a = AreaBreakdown::for_environment(&Environment::TS_ASV_Q_FU);
        assert!((a.total_pct() - 10.6).abs() < 1e-9, "got {}", a.total_pct());
    }

    #[test]
    fn baseline_and_novar_cost_nothing() {
        assert_eq!(
            AreaBreakdown::for_environment(&Environment::BASELINE).total_pct(),
            0.0
        );
        assert_eq!(
            AreaBreakdown::for_environment(&Environment::NOVAR).total_pct(),
            0.0
        );
    }

    #[test]
    fn abb_adds_two_percent() {
        let with = AreaBreakdown::for_environment(&Environment::ALL).total_pct();
        let without = AreaBreakdown::for_environment(&Environment::TS_ASV_Q_FU).total_pct();
        assert!((with - without - 2.0).abs() < 1e-9);
    }
}
