//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace-local
//! package provides the subset of criterion's API the benches in
//! `crates/bench` use: `Criterion::bench_function`, benchmark groups with
//! `sample_size`/`throughput`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Timing is a simple
//! wall-clock median over a fixed number of samples — good enough to rank
//! hot paths, not a statistics suite.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Re-export so `criterion::black_box` keeps working alongside
/// `std::hint::black_box`.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group (reported, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The bench harness handle passed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// Runs one benchmark body repeatedly and reports timing.
#[derive(Debug)]
pub struct Bencher {
    samples: u32,
    /// Median nanoseconds per iteration of the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Times `f`, first warming up, then taking timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-sample iteration calibration: aim for ~5 ms.
        let t0 = Instant::now();
        black_box(f());
        let once_ns = t0.elapsed().as_nanos().max(1) as f64;
        let iters = ((5e6 / once_ns) as u64).clamp(1, 100_000);
        let mut samples: Vec<f64> = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.last_ns = samples[samples.len() / 2];
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{:.2} ms", ns / 1e6)
    }
}

fn run_one(id: &str, samples: u32, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: samples.max(2),
        last_ns: 0.0,
    };
    f(&mut b);
    let mut line = format!("{id:<44} {:>12}/iter", human(b.last_ns));
    if let Some(Throughput::Elements(n)) = throughput {
        if b.last_ns > 0.0 {
            let per_sec = n as f64 * 1e9 / b.last_ns;
            line.push_str(&format!("  ({per_sec:.0} elem/s)"));
        }
    }
    println!("{line}");
}

impl Criterion {
    /// Benchmarks `f` under `id` with default settings.
    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_one(id.as_ref(), 10, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u32,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2) as u32;
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_positive_time() {
        let mut c = Criterion::default();
        c.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        let mut g = c.benchmark_group("group");
        g.sample_size(3).throughput(Throughput::Elements(100));
        g.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn human_units_scale() {
        assert!(human(12.0).ends_with("ns"));
        assert!(human(12_000.0).ends_with("us"));
        assert!(human(12_000_000.0).ends_with("ms"));
    }
}
