//! Trace export/replay: archive a synthetic workload trace to the text
//! format, reload it, and confirm the core model reproduces the exact same
//! cycle-level behaviour — the workflow for driving the simulator with
//! externally captured traces.
//!
//! Run with: `cargo run --release --example trace_replay`

use eval::uarch::{read_trace, write_trace, CoreConfig, OooCore};
use eval::prelude::*;

fn main() {
    let workload = Workload::by_name("vpr").expect("vpr is in the extended suite");
    println!(
        "# exporting {} ({} instructions, {} phases)",
        workload.name,
        workload.total_instructions(),
        workload.phases.len()
    );

    // Export 30k instructions of the synthetic trace.
    let original: Vec<_> = TraceGenerator::new(&workload, 42).take(30_000).collect();
    let mut archive = Vec::new();
    let written = write_trace(original.iter().copied(), &mut archive).expect("in-memory write");
    println!(
        "# wrote {written} instructions, {} bytes ({:.1} B/instruction)",
        archive.len(),
        archive.len() as f64 / written as f64
    );

    // Reload and replay on two cores; the runs must agree cycle for cycle.
    let replayed = read_trace(archive.as_slice()).expect("parses back");
    let run = |insns: &[eval::uarch::Instruction]| {
        let mut core = OooCore::new(CoreConfig::micro08());
        let mut it = insns.iter().copied().peekable();
        core.run(&mut it, insns.len() as u64)
    };
    let a = run(&original);
    let b = run(&replayed);
    assert_eq!(a, b, "replay must be cycle-exact");
    println!(
        "# replay is cycle-exact: {} instructions in {} cycles (CPI {:.3}, \
         {:.1} L2 misses/kinstr, {:.1}% branch mispredicts)",
        a.instructions,
        a.cycles,
        a.cpi(),
        1e3 * a.mr(),
        100.0 * a.mispredicts as f64 / a.branches.max(1) as f64
    );

    // The imported trace can feed the usual analysis (activity factors etc.).
    let activity = eval::uarch::ActivityVector::from_stats(&b);
    println!(
        "# activity factors from the replayed trace: icache {:.2}, intalu {:.2}, dcache {:.2}",
        activity.alpha(SubsystemId::Icache),
        activity.alpha(SubsystemId::IntAlu),
        activity.alpha(SubsystemId::Dcache)
    );
}
