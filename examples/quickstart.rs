//! Quickstart: manufacture a variation-afflicted chip, see what the
//! variation costs, and let EVAL's high-dimensional dynamic adaptation win
//! it back.
//!
//! Run with: `cargo run --release --example quickstart`

use eval::prelude::*;

fn main() {
    let config = EvalConfig::micro08();

    // 1. Manufacture a chip: personalized systematic Vt/Leff maps.
    let factory = ChipFactory::new(config.clone());
    let chip = factory.chip(1);
    let core = chip.core(0);

    // 2. What does variation cost a conventionally clocked design?
    let fvar = core.fvar_nominal(&config).get();
    println!(
        "baseline (worst-case clocked): {:.2} GHz = {:.0}% of the {:.0} GHz nominal",
        fvar,
        100.0 * fvar / config.f_nominal_ghz,
        config.f_nominal_ghz
    );

    // 3. Profile a workload: per-phase CPI, miss rate, activity factors.
    let workload = Workload::by_name("swim").expect("swim exists");
    let profile = profile_workload(&workload, 8_000, 1);
    println!(
        "workload {}: {} phases, rp = {} cycles",
        workload.name,
        profile.phases.len(),
        profile.rp_cycles
    );

    // 4. Adapt each phase: frequency, per-subsystem ASV, structure choices.
    let optimizer = ExhaustiveOptimizer::new();
    for phase in &profile.phases {
        let d = decide_phase(
            &config,
            core,
            &optimizer,
            Environment::TS_ASV_Q_FU,
            phase,
            workload.class,
            profile.rp_cycles,
            config.th_c,
        );
        println!(
            "phase {}: f = {:.2} GHz ({:+.0}% vs baseline), PE = {:.1e} err/inst, \
             P = {:.1} W, T = {:.1} C, outcome = {:?}",
            phase.index,
            d.f_ghz,
            100.0 * (d.f_ghz / fvar - 1.0),
            d.evaluation.pe_per_instruction,
            d.evaluation.total_power_w,
            d.evaluation.max_t_c,
            d.outcome
        );
    }

    // 5. And the bill: the area this support costs.
    let area = AreaBreakdown::for_environment(&Environment::TS_ASV_Q_FU);
    println!(
        "area overhead: {:.1}% of the processor (checker {:.1}%, replicas {:.1}%)",
        area.total_pct(),
        area.checker_pct,
        area.int_alu_replica_pct + area.fp_replica_pct
    );
}
