//! Speed binning under variation: the manufacturing-economics scenario the
//! paper's introduction motivates ("a higher-performing processor and/or a
//! cheaper manufacturing process — in short, a more cost-effective design").
//!
//! A population of chips is binned by shipping frequency twice: once
//! conventionally (worst-case clocked at `fvar`) and once with the EVAL
//! support enabled (timing speculation + per-subsystem ASV, adapted per
//! phase). The histogram shift is the business case.
//!
//! Run with: `cargo run --release --example chip_binning`

use eval::prelude::*;

fn main() {
    let config = EvalConfig::micro08();
    let factory = ChipFactory::new(config.clone());
    let chips = 24;

    // A representative workload mix for binning.
    let workload = Workload::by_name("gcc").expect("gcc exists");
    let profile = profile_workload(&workload, 6_000, 7);
    let optimizer = ExhaustiveOptimizer::new();

    let mut baseline_bins: Vec<f64> = Vec::new();
    let mut eval_bins: Vec<f64> = Vec::new();
    for chip in factory.population(99, chips) {
        let core = chip.core(0);
        baseline_bins.push(core.fvar_nominal(&config).get());
        // EVAL-adapted shipping frequency: the slowest phase's adapted f
        // (the bin must hold across the workload).
        let f_ship = profile
            .phases
            .iter()
            .map(|ph| {
                decide_phase(
                    &config,
                    core,
                    &optimizer,
                    Environment::TS_ASV,
                    ph,
                    workload.class,
                    profile.rp_cycles,
                    config.th_c,
                )
                .f_ghz
            })
            .fold(f64::INFINITY, f64::min);
        eval_bins.push(f_ship);
    }

    let histogram = |name: &str, bins: &[f64]| {
        let edges = [2.8, 3.0, 3.2, 3.4, 3.6, 3.8, 4.0, 4.2, 4.4, 4.6, 4.8];
        println!("{name}:");
        for w in edges.windows(2) {
            let count = bins.iter().filter(|&&f| f >= w[0] && f < w[1]).count();
            println!(
                "  {:.1}-{:.1} GHz | {}{}",
                w[0],
                w[1],
                "#".repeat(count),
                if count == 0 { "" } else { &"" }
            );
        }
        let mean = bins.iter().sum::<f64>() / bins.len() as f64;
        println!("  mean shipping frequency: {mean:.2} GHz");
        mean
    };

    println!("# Speed bins over {chips} chips (workload: {})", workload.name);
    let base_mean = histogram("conventional binning (fvar)", &baseline_bins);
    println!();
    let eval_mean = histogram("EVAL binning (TS+ASV, per-phase adapted)", &eval_bins);
    println!();
    println!(
        "uplift: {:+.0}% mean shipping frequency at +{:.1}% area",
        100.0 * (eval_mean / base_mean - 1.0),
        AreaBreakdown::for_environment(&Environment::TS_ASV).total_pct()
    );
}
