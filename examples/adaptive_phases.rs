//! The runtime loop of §4.3.2–4.3.3, end to end: the hardware BBV phase
//! detector watches the committed instruction stream; on a *new* phase the
//! fuzzy-controller routines run and pick a configuration (then retuning
//! trims it); on a *recurring* phase the saved configuration is reused at
//! almost no cost.
//!
//! Run with: `cargo run --release --example adaptive_phases`

use eval::adapt::{AdaptiveSystem, RuntimeEvent};
use eval::prelude::*;

fn main() {
    let config = EvalConfig::micro08();
    let factory = ChipFactory::new(config.clone());
    let chip = factory.chip(5);
    let core = chip.core(0);

    let workload = Workload::by_name("equake").expect("equake exists");
    let profile = profile_workload(&workload, 6_000, 5);

    // Train the deployable controller once ("manufacturer-site training").
    println!("# training fuzzy controllers against the exhaustive oracle...");
    let fuzzy = FuzzyOptimizer::train(
        &config,
        &chip,
        0,
        Environment::TS_ASV,
        &TrainingBudget::default(),
    );

    // The deployed system: detector + controller + configuration cache.
    let mut system = AdaptiveSystem::new(
        &config,
        core,
        &fuzzy,
        Environment::TS_ASV,
        workload.class,
        profile.rp_cycles,
    )
    .with_detector(PhaseDetector::new(10_000, 200));

    println!("# interval-by-interval adaptation (equake)");
    let mut instructions = 0u64;
    let mut current_phase = 0usize;
    for insn in TraceGenerator::new(&workload, 5) {
        instructions += 1;
        // Which spec phase we are in — in hardware, the counter window
        // *is* this measurement.
        let mut consumed = 0;
        for (i, p) in workload.phases.iter().enumerate() {
            consumed += p.instructions;
            if instructions <= consumed {
                current_phase = i;
                break;
            }
        }
        let measured = profile.phases[current_phase].clone();
        match system.observe(insn.bb_id, move || measured) {
            Some(RuntimeEvent::Adapted(d)) => println!(
                "instr {instructions:>6}: NEW phase -> f = {:.2} GHz, PE = {:.1e}, \
                 P = {:.1} W, outcome {:?}",
                d.f_ghz, d.evaluation.pe_per_instruction, d.evaluation.total_power_w, d.outcome
            ),
            Some(RuntimeEvent::Reused(d)) => println!(
                "instr {instructions:>6}: seen phase  -> reuse saved config ({:.2} GHz)",
                d.f_ghz
            ),
            None => {}
        }
    }

    let stats = system.stats();
    println!(
        "# {} distinct phases; {} controller runs, {} config reuses, \
         {:.1} us total adaptation overhead over {} instructions",
        system.phases_seen(),
        stats.controller_runs,
        stats.config_reuses,
        system.overhead_us(),
        stats.instructions
    );
}
