//! Error rate, power and frequency are tradeable (§6.1): sweep the clock
//! past the safe frequency for one application and watch performance climb
//! until the error-recovery cost swamps it — then validate the analytic
//! `PE * rp` recovery term of Equation 5 against a stochastic Diva-checker
//! simulation.
//!
//! Run with: `cargo run --release --example error_tradeoff`

use eval::prelude::*;
use eval::uarch::{CoreConfig, RecoveryModel};

fn main() {
    let config = EvalConfig::micro08();
    let factory = ChipFactory::new(config.clone());
    let chip = factory.chip(11);
    let core = chip.core(0);

    let workload = Workload::by_name("mesa").expect("mesa exists");
    let profile = profile_workload(&workload, 8_000, 11);
    let ph = &profile.phases[0];
    let perf_model = PerfModel::new(
        ph.cpi_comp(eval::uarch::QueueSize::Full),
        ph.mr,
        ph.mp_ns,
        profile.rp_cycles,
    );

    let fvar = core.fvar_nominal(&config).get();
    println!("# {}: fvar = {:.2} GHz; sweeping past it with a checker", workload.name, fvar);
    println!("{:>7} {:>12} {:>10} {:>10}", "f_GHz", "PE/inst", "BIPS", "P_W");

    let settings = vec![(1.0, 0.0); N_SUBSYSTEMS];
    let mut best = (0.0f64, 0.0f64);
    for step in 0..=20 {
        let f = fvar + 0.08 * step as f64;
        let Ok(eval_res) = core.evaluate(
            &config,
            config.th_c,
            eval::units::GHz::raw(f),
            &settings,
            &ph.activity.alpha_f,
            &ph.activity.rho,
            &VariantSelection::default(),
        ) else {
            break;
        };
        let pe = eval_res.pe_per_instruction.clamp(0.0, 1.0);
        let bips = perf_model.perf(f, pe);
        if bips > best.1 {
            best = (f, bips);
        }
        println!(
            "{f:>7.2} {pe:>12.2e} {bips:>10.3} {:>10.1}",
            eval_res.total_power_w
        );
        if pe > 0.05 {
            break; // deep past the cliff
        }
    }
    println!(
        "# fopt = {:.2} GHz ({:+.0}% over fvar) at {:.3} BIPS",
        best.0,
        100.0 * (best.0 / fvar - 1.0),
        best.1
    );

    // Validate Equation 5's CPIrec = PE * rp against the stochastic checker.
    println!();
    println!("# checker validation: analytic vs simulated recovery cycles");
    let core_cfg = CoreConfig::micro08();
    let mut checker = Checker::micro08(&core_cfg);
    let recovery = RecoveryModel::from_config(&core_cfg);
    for pe in [1e-4, 1e-3, 1e-2] {
        let n = 1_000_000u64;
        let simulated = checker.check_window(n, pe, 2008) as f64 / n as f64;
        let analytic = recovery.cpi_rec(pe);
        println!(
            "PE = {pe:.0e}: analytic {analytic:.5} cycles/inst, simulated {simulated:.5} \
             ({:+.1}%)",
            100.0 * (simulated / analytic - 1.0)
        );
    }
    println!(
        "# checker observed error rate: {:.2e} (detected {} errors)",
        checker.observed_pe(),
        checker.errors_detected()
    );
}
