//! Hot-path equivalence: the memoized, warm-started operating-point
//! evaluator (`SceneEval::check_at` over a `SolveCache`) must be
//! bit-identical to a cold evaluation of the same ladder point, must agree
//! with the damped reference solver path to physical tolerance, and must
//! return values that do not depend on query order.

use eval::adapt::SceneEval;
use eval::power::{
    freq_steps, solve_thermal, solve_thermal_reference, vbb_steps, vdd_steps, OperatingPoint,
    SolveCache, SubsystemPowerParams, ThermalEnvironment,
};
use eval::prelude::*;
use std::sync::OnceLock;

fn factory() -> &'static ChipFactory {
    static F: OnceLock<ChipFactory> = OnceLock::new();
    F.get_or_init(|| ChipFactory::new(EvalConfig::micro08()))
}

fn scene(state: &eval::core::chip::SubsystemState, env: Environment) -> SubsystemScene<'_> {
    SubsystemScene {
        state,
        variants: VariantSelection::default(),
        th_c: 60.0,
        alpha_f: 0.5,
        rho: 0.6,
        pe_budget: 1e-4 / N_SUBSYSTEMS as f64,
        env,
    }
}

fn result_bits(r: Option<(f64, f64)>) -> (u64, u64, bool) {
    match r {
        Some((p, t)) => (p.to_bits(), t.to_bits(), true),
        None => (0, 0, false),
    }
}

/// Warm shared-cache evaluation over the full `(f, Vdd, Vbb)` grid is
/// bitwise identical to evaluating each point with its own fresh cache, on
/// four different chips.
#[test]
fn warm_cache_matches_fresh_cache_bitwise_across_the_grid() {
    let cfg = factory().config().clone();
    let cases = [
        (1u64, SubsystemId::IntAlu),
        (2, SubsystemId::Dcache),
        (3, SubsystemId::IntQueue),
        (4, SubsystemId::FpUnit),
    ];
    for (seed, id) in cases {
        let chip = factory().chip(seed);
        let state = chip.core(0).subsystem(id);
        let sc = scene(state, Environment::TS_ABB_ASV);
        let eval = SceneEval::new(&cfg, &sc);
        let mut warm = SolveCache::new();
        for f_idx in 0..freq_steps().len() {
            for &vdd in vdd_steps() {
                for &vbb in vbb_steps() {
                    let shared = eval.check_at(&mut warm, f_idx, vdd, vbb);
                    let mut fresh = SolveCache::new();
                    let cold = eval.check_at(&mut fresh, f_idx, vdd, vbb);
                    assert_eq!(
                        result_bits(shared),
                        result_bits(cold),
                        "chip {seed} {id} f_idx={f_idx} vdd={vdd} vbb={vbb}"
                    );
                }
            }
        }
    }
}

/// The fast path agrees with the independent reference implementation
/// (damped solver + unbounded error-rate evaluation): identical
/// feasibility classification away from constraint boundaries, and tight
/// numeric agreement whenever both sides are feasible.
#[test]
fn fast_path_matches_reference_solver_across_the_grid() {
    let cfg = factory().config().clone();
    let chip = factory().chip(2);
    let state = chip.core(0).subsystem(SubsystemId::IntAlu);
    let sc = scene(state, Environment::TS_ABB_ASV);
    let eval = SceneEval::new(&cfg, &sc);
    let params = state.power_params(&sc.variants);
    let timing = state.timing(&sc.variants);
    let tenv = ThermalEnvironment {
        th_c: sc.th_c,
        alpha_f: sc.alpha_f,
    };
    let mut cache = SolveCache::new();
    let mut compared = 0usize;
    for f_idx in 0..freq_steps().len() {
        let f_ghz = freq_steps()[f_idx];
        for &vdd in vdd_steps() {
            for &vbb in vbb_steps() {
                let fast = eval.check_at(&mut cache, f_idx, vdd, vbb);
                let reference = sc.check_reference(&cfg, f_ghz, vdd, vbb);
                // Near a constraint boundary the two solvers' tolerance
                // difference (1e-7 vs 1e-6) may legitimately flip the
                // classification; skip only those points.
                let op = OperatingPoint::raw(f_ghz, vdd, vbb);
                let boundary = match solve_thermal_reference(&params, &tenv, &op, &cfg.device) {
                    Err(_) => false,
                    Ok(sol) => {
                        let cond = OperatingConditions {
                            vdd: eval::units::Volts::raw(vdd),
                            vbb: eval::units::Volts::raw(vbb),
                            t_c: sol.t_c,
                        };
                        let pe = sc.rho * timing.pe_access(eval::units::GHz::raw(f_ghz), &cond);
                        (sol.t_c - cfg.constraints.t_max_c).abs() < 1e-3
                            || (pe - sc.pe_budget).abs() < 0.01 * sc.pe_budget
                    }
                };
                if boundary {
                    continue;
                }
                compared += 1;
                assert_eq!(
                    fast.is_some(),
                    reference.is_some(),
                    "classification differs at f={f_ghz} vdd={vdd} vbb={vbb}: \
                     fast {fast:?} vs reference {reference:?}"
                );
                if let (Some((p_f, t_f)), Some((p_r, t_r))) = (fast, reference) {
                    assert!(
                        (p_f - p_r).abs() < 1e-3 && (t_f - t_r).abs() < 1e-3,
                        "fast ({p_f}, {t_f}) vs reference ({p_r}, {t_r}) \
                         at f={f_ghz} vdd={vdd} vbb={vbb}"
                    );
                }
            }
        }
    }
    assert!(compared > 1000, "only {compared} grid points compared");
}

/// `freq_max` via the cached guess-verify search equals the uncached
/// reference bisection for every environment that exposes a ladder.
#[test]
fn freq_max_fast_equals_reference() {
    let cfg = factory().config().clone();
    for seed in [1u64, 4] {
        let chip = factory().chip(seed);
        let opt = ExhaustiveOptimizer::new();
        for id in [SubsystemId::Dcache, SubsystemId::LdStQueue] {
            let state = chip.core(0).subsystem(id);
            for env in [Environment::TS, Environment::TS_ASV, Environment::TS_ABB_ASV] {
                let sc = scene(state, env);
                assert_eq!(
                    opt.freq_max(&cfg, &sc),
                    opt.freq_max_reference(&cfg, &sc),
                    "chip {seed} {id} {}",
                    env.name
                );
            }
        }
    }
}

/// Cached values are a pure function of the key: sweeping the grid
/// forward, backward, or frequency-major vs voltage-major returns the same
/// bits for every point.
#[test]
fn query_order_does_not_change_cached_answers() {
    let cfg = factory().config().clone();
    let chip = factory().chip(3);
    let state = chip.core(0).subsystem(SubsystemId::IntReg);
    let sc = scene(state, Environment::TS_ABB_ASV);
    let eval = SceneEval::new(&cfg, &sc);

    let mut points = Vec::new();
    for f_idx in 0..freq_steps().len() {
        for &vdd in vdd_steps() {
            for &vbb in vbb_steps() {
                points.push((f_idx, vdd, vbb));
            }
        }
    }
    let sweep = |order: &[(usize, f64, f64)]| -> Vec<((usize, u64, u64), (u64, u64, bool))> {
        let mut cache = SolveCache::new();
        let mut out: Vec<_> = order
            .iter()
            .map(|&(f_idx, vdd, vbb)| {
                (
                    (f_idx, vdd.to_bits(), vbb.to_bits()),
                    result_bits(eval.check_at(&mut cache, f_idx, vdd, vbb)),
                )
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    };

    let forward = sweep(&points);
    let mut reversed = points.clone();
    reversed.reverse();
    assert_eq!(forward, sweep(&reversed), "reverse order changed answers");
    // A deterministic interleave: odd indices first, then even.
    let mut interleaved: Vec<_> = points.iter().copied().skip(1).step_by(2).collect();
    interleaved.extend(points.iter().copied().step_by(2));
    assert_eq!(forward, sweep(&interleaved), "interleaved order changed answers");
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// For random thermal environments and operating points, the fast
        /// solver's fixed point sits within 1e-4 of the reference
        /// solver's whenever both converge.
        #[test]
        fn prop_fast_solver_tracks_reference_over_random_environments(
            kdyn in 0.1f64..1.2,
            ksta in 0.02f64..0.6,
            rth in 1.0f64..8.0,
            th in 40.0f64..75.0,
            alpha in 0.0f64..1.0,
            f in 2.4f64..5.6,
            vdd in 0.8f64..1.2,
            vbb in -0.5f64..0.5,
        ) {
            let device = eval::variation::DeviceParams::micro08();
            let params = SubsystemPowerParams {
                kdyn_w: kdyn,
                ksta_nom_w: ksta,
                rth_c_per_w: rth,
                vt0: device.vt_nominal,
            };
            let env = ThermalEnvironment { th_c: th, alpha_f: alpha };
            let op = OperatingPoint::raw(f, vdd, vbb);
            let fast = solve_thermal(&params, &env, &op, &device);
            let reference = solve_thermal_reference(&params, &env, &op, &device);
            if let (Ok(fast), Ok(reference)) = (fast, reference) {
                prop_assert!(
                    (fast.t_c - reference.t_c).abs() < 1e-4,
                    "fast {} vs reference {}", fast.t_c, reference.t_c
                );
                prop_assert!((fast.total_w() - reference.total_w()).abs() < 1e-4);
            }
        }
    }
}
