//! Cross-crate integration tests: chips flow from the variation substrate
//! through timing/power into the adaptation layer, and the paper's core
//! orderings hold end to end.

use eval::prelude::*;

fn config() -> EvalConfig {
    EvalConfig::micro08()
}

#[test]
fn novar_chip_is_rated_at_nominal_frequency() {
    let cfg = config();
    let chip = ChipModel::no_variation(&cfg);
    for core_idx in 0..4 {
        let fvar = chip.core(core_idx).fvar_nominal(&cfg).get();
        assert!(
            (fvar - cfg.f_nominal_ghz).abs() / cfg.f_nominal_ghz < 0.02,
            "core {core_idx}: NoVar fvar = {fvar}"
        );
    }
}

#[test]
fn variation_costs_frequency_and_adaptation_wins_it_back() {
    let cfg = config();
    let factory = ChipFactory::new(cfg.clone());
    let chip = factory.chip(3);
    let core = chip.core(0);
    let fvar = core.fvar_nominal(&cfg).get();
    assert!(fvar < cfg.f_nominal_ghz, "variation must cost frequency");

    let w = Workload::by_name("gzip").expect("exists");
    let profile = profile_workload(&w, 4_000, 3);
    let d = decide_phase(
        &cfg,
        core,
        &ExhaustiveOptimizer::new(),
        Environment::TS_ASV,
        &profile.phases[0],
        w.class,
        profile.rp_cycles,
        cfg.th_c,
    );
    assert!(
        d.f_ghz > fvar,
        "adaptation ({}) must beat baseline ({fvar})",
        d.f_ghz
    );
    // And it must respect every constraint.
    assert!(d.evaluation.pe_per_instruction <= cfg.constraints.pe_max);
    assert!(d.evaluation.max_t_c <= cfg.constraints.t_max_c);
    assert!(d.evaluation.total_power_w <= cfg.constraints.p_max_w);
}

#[test]
fn environment_capability_ordering_holds_per_phase() {
    let cfg = config();
    let factory = ChipFactory::new(cfg.clone());
    let chip = factory.chip(8);
    let core = chip.core(0);
    let w = Workload::by_name("mesa").expect("exists");
    let profile = profile_workload(&w, 4_000, 8);
    let oracle = ExhaustiveOptimizer::new();
    let f_of = |env: Environment| {
        decide_phase(
            &cfg,
            core,
            &oracle,
            env,
            &profile.phases[0],
            w.class,
            profile.rp_cycles,
            cfg.th_c,
        )
        .f_ghz
    };
    let ts = f_of(Environment::TS);
    let asv = f_of(Environment::TS_ASV);
    assert!(asv >= ts - 1e-9, "ASV ({asv}) must not lose to TS ({ts})");
}

#[test]
fn perf_model_consumes_profiler_outputs_consistently() {
    let w = Workload::by_name("twolf").expect("exists");
    let profile = profile_workload(&w, 4_000, 1);
    for ph in &profile.phases {
        let m = PerfModel::new(
            ph.cpi_comp(eval::uarch::QueueSize::Full),
            ph.mr,
            ph.mp_ns,
            profile.rp_cycles,
        );
        // Error-free perf at 4 GHz is bounded by issue width * frequency.
        let bips = m.perf(4.0, 0.0);
        assert!(bips > 0.0 && bips < 12.0, "{}: {bips} BIPS", ph.index);
        // More errors never help.
        assert!(m.perf(4.0, 1e-3) <= bips);
    }
}

#[test]
fn area_cost_of_preferred_scheme_matches_figure_7d() {
    let a = AreaBreakdown::for_environment(&Environment::TS_ASV_Q_FU);
    assert!((a.total_pct() - 10.6).abs() < 1e-9);
}

#[test]
fn guardbanded_signoff_is_consistent_across_crates() {
    // The physical max frequency of a NoVar subsystem exceeds nominal by
    // exactly the guardband (to first order).
    let cfg = config();
    let chip = ChipModel::no_variation(&cfg);
    let core = chip.core(0);
    let cond = OperatingConditions::nominal();
    for s in core.subsystems() {
        let f_phys = s
            .timing(&VariantSelection::default())
            .max_frequency(&cond, s.design_pe())
            .get();
        let expect = cfg.f_nominal_ghz * (1.0 + eval::timing::DESIGN_GUARDBAND);
        assert!(
            (f_phys - expect).abs() / expect < 0.02,
            "{}: physical fmax {f_phys} vs expected {expect}",
            s.id()
        );
    }
}
