//! Failure-injection and boundary-condition tests: the adaptation stack
//! must stay inside the constraint envelope even under hostile conditions.

use eval::prelude::*;

fn decide_under(
    th_c: f64,
    env: Environment,
    alpha_scale: f64,
) -> (EvalConfig, eval::adapt::PhaseDecision) {
    let cfg = EvalConfig::micro08();
    let factory = ChipFactory::new(cfg.clone());
    let chip = factory.chip(77);
    let w = Workload::by_name("swim").expect("exists");
    let profile = profile_workload(&w, 4_000, 77);
    let mut phase = profile.phases[0].clone();
    for a in phase.activity.alpha_f.iter_mut() {
        *a = (*a * alpha_scale).clamp(0.0, 1.0);
    }
    let d = decide_phase(
        &cfg,
        chip.core(0),
        &ExhaustiveOptimizer::new(),
        env,
        &phase,
        w.class,
        profile.rp_cycles,
        th_c,
    );
    (cfg, d)
}

#[test]
fn hot_heat_sink_still_respects_tmax() {
    // TH at its specification limit (70 C): much less thermal headroom,
    // but the decision must still satisfy every constraint.
    let (cfg, d) = decide_under(cfg_th_max(), Environment::TS_ASV, 1.0);
    assert!(d.evaluation.max_t_c <= cfg.constraints.t_max_c + 1e-9);
    assert!(d.evaluation.pe_per_instruction <= cfg.constraints.pe_max);
    assert!(d.evaluation.total_power_w <= cfg.constraints.p_max_w + 1e-9);

    // And it costs frequency relative to a cool heat sink.
    let (_, cool) = decide_under(50.0, Environment::TS_ASV, 1.0);
    assert!(
        cool.f_ghz >= d.f_ghz,
        "cool {} must be at least hot {}",
        cool.f_ghz,
        d.f_ghz
    );
}

fn cfg_th_max() -> f64 {
    EvalConfig::micro08().constraints.th_max_c
}

#[test]
fn saturated_activity_is_survivable() {
    // Every subsystem at 100% activity: worst-case power density.
    let (cfg, d) = decide_under(60.0, Environment::TS_ASV, 100.0);
    assert!(d.evaluation.total_power_w <= cfg.constraints.p_max_w + 1e-9);
    assert!(d.evaluation.max_t_c <= cfg.constraints.t_max_c + 1e-9);
    assert!(d.f_ghz >= FREQ_LADDER.min);
}

#[test]
fn idle_phase_does_not_confuse_the_optimizer() {
    // Near-zero activity: almost no dynamic power, deep frequency headroom.
    let (cfg, d) = decide_under(60.0, Environment::TS_ASV, 0.01);
    assert!(d.f_ghz > 0.9 * cfg.f_nominal_ghz);
    assert!(d.evaluation.pe_per_instruction <= cfg.constraints.pe_max);
}

#[test]
fn worst_chip_of_a_population_still_gains_from_adaptation() {
    let cfg = EvalConfig::micro08();
    let factory = ChipFactory::new(cfg.clone());
    // Find the slowest of 12 chips.
    let worst = factory
        .population(7, 12)
        .min_by(|a, b| {
            a.core(0)
                .fvar_nominal(&cfg).get()
                .total_cmp(&b.core(0).fvar_nominal(&cfg).get())
        })
        .expect("population non-empty");
    let fvar = worst.core(0).fvar_nominal(&cfg).get();
    let w = Workload::by_name("crafty").expect("exists");
    let profile = profile_workload(&w, 4_000, 7);
    let d = decide_phase(
        &cfg,
        worst.core(0),
        &ExhaustiveOptimizer::new(),
        Environment::TS_ASV,
        &profile.phases[0],
        w.class,
        profile.rp_cycles,
        cfg.th_c,
    );
    assert!(
        d.f_ghz > fvar * 1.1,
        "even the worst chip ({fvar} GHz) should gain >10% ({} GHz)",
        d.f_ghz
    );
}

#[test]
fn checker_handles_error_storms() {
    // PE far beyond the constraint: the checker keeps recovering (albeit
    // at terrible performance), never corrupting its accounting.
    let core_cfg = eval::uarch::CoreConfig::micro08();
    let mut checker = Checker::micro08(&core_cfg);
    let n = 100_000;
    let extra = checker.check_window(n, 0.5, 1);
    assert!(extra > 0);
    let pe = checker.observed_pe();
    assert!((0.45..0.55).contains(&pe), "observed {pe}");
}

#[test]
fn retune_survives_malicious_settings() {
    // Maximum supply and forward bias everywhere: leakage inferno. Retune
    // must not panic and must end at a ladder frequency.
    let cfg = EvalConfig::micro08();
    let factory = ChipFactory::new(cfg.clone());
    let chip = factory.chip(13);
    let settings = vec![(1.2, 0.5); N_SUBSYSTEMS];
    let r = eval::adapt::retune(
        &cfg,
        chip.core(0),
        cfg.constraints.th_max_c,
        5.6,
        &settings,
        &[1.0; N_SUBSYSTEMS],
        &[1.0; N_SUBSYSTEMS],
        &VariantSelection::default(),
    );
    assert!(FREQ_LADDER.contains(r.f_ghz));
    assert!(matches!(
        r.outcome,
        Outcome::Error | Outcome::Temp | Outcome::Power
    ));
}
