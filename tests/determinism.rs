//! Reproducibility guarantees: everything from chip manufacturing to whole
//! campaigns is a deterministic function of its seeds, independent of
//! thread count.

use eval::prelude::*;

#[test]
fn campaign_is_identical_across_thread_counts() {
    let run = |threads: usize| {
        let mut c = Campaign::new(3);
        c.profile_budget = 3_000;
        c.workloads = vec![Workload::by_name("gzip").expect("exists")];
        c.threads = threads;
        c.run(&[Environment::TS], &[Scheme::ExhDyn]).expect("campaign runs")
    };
    let serial = run(1);
    let chunked = run(3);
    assert_eq!(serial, chunked, "thread count must not change results");
}

#[test]
fn campaign_is_identical_across_invocations() {
    let run = || {
        let mut c = Campaign::new(2);
        c.profile_budget = 3_000;
        c.workloads = vec![Workload::by_name("mesa").expect("exists")];
        c.run(&[Environment::TS_ASV], &[Scheme::Static]).expect("campaign runs")
    };
    assert_eq!(run(), run());
}

#[test]
fn fuzzy_training_is_deterministic_end_to_end() {
    let cfg = EvalConfig::micro08();
    let factory = ChipFactory::new(cfg.clone());
    let chip = factory.chip(4);
    let budget = TrainingBudget {
        examples: 50,
        ..TrainingBudget::default()
    };
    let a = FuzzyOptimizer::train(&cfg, &chip, 0, Environment::TS, &budget);
    let b = FuzzyOptimizer::train(&cfg, &chip, 0, Environment::TS, &budget);
    // Same queries, same answers.
    let profile = profile_workload(&Workload::by_name("gzip").expect("exists"), 3_000, 1);
    let scene_args = &profile.phases[0];
    let d_a = decide_phase(
        &cfg,
        chip.core(0),
        &a,
        Environment::TS,
        scene_args,
        WorkloadClass::Int,
        profile.rp_cycles,
        cfg.th_c,
    );
    let d_b = decide_phase(
        &cfg,
        chip.core(0),
        &b,
        Environment::TS,
        scene_args,
        WorkloadClass::Int,
        profile.rp_cycles,
        cfg.th_c,
    );
    assert_eq!(d_a, d_b);
}

#[test]
fn different_seeds_give_different_chips_same_seed_same_chip() {
    let cfg = EvalConfig::micro08();
    let factory = ChipFactory::new(cfg);
    assert_eq!(factory.chip(100), factory.chip(100));
    assert_ne!(factory.chip(100), factory.chip(101));
}

#[test]
fn four_chip_population_is_bit_identical_across_runs() {
    // Stronger than `==`: compare the IEEE-754 bit patterns of every
    // reported number, so even a sign-of-zero or NaN-payload difference
    // between two identical runs would fail.
    let run = || {
        let mut c = Campaign::new(4);
        c.profile_budget = 3_000;
        c.workloads = vec![Workload::by_name("gzip").expect("exists")];
        c.training = TrainingBudget {
            examples: 60,
            ..TrainingBudget::default()
        };
        c.run(&[Environment::TS_ASV], &[Scheme::FuzzyDyn, Scheme::ExhDyn])
            .expect("campaign runs")
    };
    let bits = |r: &CampaignResult| -> Vec<u64> {
        let mut v = vec![
            r.baseline.freq_rel.to_bits(),
            r.baseline.perf_rel.to_bits(),
            r.baseline.power_w.to_bits(),
            r.novar.freq_rel.to_bits(),
            r.novar.perf_rel.to_bits(),
            r.novar.power_w.to_bits(),
        ];
        for s in [Scheme::FuzzyDyn, Scheme::ExhDyn] {
            let cell = r.cell(Environment::TS_ASV, s).expect("cell exists");
            v.extend([
                cell.freq_rel.to_bits(),
                cell.perf_rel.to_bits(),
                cell.power_w.to_bits(),
            ]);
        }
        v
    };
    let a = run();
    let b = run();
    assert_eq!(
        bits(&a),
        bits(&b),
        "two runs over a 4-chip population must be bit-identical"
    );
}
