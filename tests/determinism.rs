//! Reproducibility guarantees: everything from chip manufacturing to whole
//! campaigns is a deterministic function of its seeds, independent of
//! thread count.

use eval::prelude::*;

#[test]
fn campaign_is_identical_across_thread_counts() {
    let run = |threads: usize| {
        let mut c = Campaign::new(3);
        c.profile_budget = 3_000;
        c.workloads = vec![Workload::by_name("gzip").expect("exists")];
        c.threads = threads;
        c.run(&[Environment::TS], &[Scheme::ExhDyn])
    };
    let serial = run(1);
    let chunked = run(3);
    assert_eq!(serial, chunked, "thread count must not change results");
}

#[test]
fn campaign_is_identical_across_invocations() {
    let run = || {
        let mut c = Campaign::new(2);
        c.profile_budget = 3_000;
        c.workloads = vec![Workload::by_name("mesa").expect("exists")];
        c.run(&[Environment::TS_ASV], &[Scheme::Static])
    };
    assert_eq!(run(), run());
}

#[test]
fn fuzzy_training_is_deterministic_end_to_end() {
    let cfg = EvalConfig::micro08();
    let factory = ChipFactory::new(cfg.clone());
    let chip = factory.chip(4);
    let budget = TrainingBudget {
        examples: 50,
        ..TrainingBudget::default()
    };
    let a = FuzzyOptimizer::train(&cfg, &chip, 0, Environment::TS, &budget);
    let b = FuzzyOptimizer::train(&cfg, &chip, 0, Environment::TS, &budget);
    // Same queries, same answers.
    let profile = profile_workload(&Workload::by_name("gzip").expect("exists"), 3_000, 1);
    let scene_args = &profile.phases[0];
    let d_a = decide_phase(
        &cfg,
        chip.core(0),
        &a,
        Environment::TS,
        scene_args,
        WorkloadClass::Int,
        profile.rp_cycles,
        cfg.th_c,
    );
    let d_b = decide_phase(
        &cfg,
        chip.core(0),
        &b,
        Environment::TS,
        scene_args,
        WorkloadClass::Int,
        profile.rp_cycles,
        cfg.th_c,
    );
    assert_eq!(d_a, d_b);
}

#[test]
fn different_seeds_give_different_chips_same_seed_same_chip() {
    let cfg = EvalConfig::micro08();
    let factory = ChipFactory::new(cfg);
    assert_eq!(factory.chip(100), factory.chip(100));
    assert_ne!(factory.chip(100), factory.chip(101));
}
