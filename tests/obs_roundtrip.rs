//! Cross-crate round-trip: wrapping a [`eval_trace::Collector`] in an
//! [`eval_obs::ProgressSink`] must not change the traced JSONL stream by
//! a single byte. This is the load-bearing invariant behind the
//! `--progress` flag: observability must be free.

use std::time::Duration;

use eval_adapt::{Campaign, Scheme};
use eval_core::Environment;
use eval_trace::{BufferSink, Collector, Record, StreamingJsonl, TraceSink, Tracer};
use eval_uarch::Workload;

fn small_campaign() -> Campaign {
    let mut campaign = Campaign::new(2);
    campaign.profile_budget = 2_000;
    campaign.workloads = vec![Workload::by_name("gzip").expect("workload exists")];
    campaign.threads = 1;
    campaign
}

/// Records a small traced campaign once and returns the raw records.
fn campaign_records() -> Vec<Record> {
    let buffer = BufferSink::new();
    small_campaign()
        .run_traced(
            &[Environment::TS_ASV],
            &[Scheme::ExhDyn],
            Tracer::new(&buffer),
        )
        .expect("campaign runs");
    buffer.into_records()
}

fn replay(records: &[Record], sink: &dyn TraceSink) {
    for rec in records {
        sink.record(rec.clone());
    }
}

#[test]
fn progress_sink_keeps_the_jsonl_stream_bit_identical() {
    let records = campaign_records();
    assert!(!records.is_empty(), "campaign produced no records");

    let plain = Collector::new();
    replay(&records, &plain);

    // Zero interval: heartbeat on *every* record — maximal interference.
    let progress = eval_obs::ProgressSink::new(Collector::new(), Vec::new(), Duration::ZERO);
    replay(&records, &progress);
    assert!(progress.chips_done() > 0, "chips_done counter not mirrored");
    let wrapped = progress.into_inner();

    assert_eq!(
        plain.jsonl(),
        wrapped.jsonl(),
        "ProgressSink altered the traced stream"
    );
    assert_eq!(plain.summary(), wrapped.summary());
}

#[test]
fn progress_sink_heartbeat_interval_does_not_affect_the_stream() {
    let records = campaign_records();

    let fast = eval_obs::ProgressSink::new(Collector::new(), Vec::new(), Duration::ZERO);
    let slow = eval_obs::ProgressSink::new(
        Collector::new(),
        Vec::new(),
        Duration::from_secs(3600),
    );
    replay(&records, &fast);
    replay(&records, &slow);
    assert_eq!(fast.into_inner().jsonl(), slow.into_inner().jsonl());
}

/// The streaming sink, fed the same records the campaign's commit
/// pipeline replays chip by chip, must produce the exact file
/// `Collector::write_jsonl` writes at end-of-run — crash-safety must
/// not change a single byte of the trace.
#[test]
fn streaming_sink_file_is_byte_identical_to_end_of_run_write_jsonl() {
    let records = campaign_records();
    let dir = std::env::temp_dir();
    let streamed = dir.join(format!("eval-roundtrip-stream-{}.jsonl", std::process::id()));
    let collected = dir.join(format!("eval-roundtrip-collect-{}.jsonl", std::process::id()));

    let stream = StreamingJsonl::create(&streamed).expect("creates");
    // Tracer::replay is exactly what Campaign uses to drain each chip's
    // BufferSink — it flushes after the batch, committing event lines.
    Tracer::new(&stream).replay(records.clone());
    let before_finish = std::fs::read_to_string(&streamed).expect("readable");
    assert!(before_finish.contains("chip-start"), "{before_finish}");
    assert!(before_finish.ends_with('\n'), "complete lines only");
    stream.finish().expect("finishes");

    let collector = Collector::new();
    Tracer::new(&collector).replay(records);
    collector.write_jsonl(&collected).expect("writes");

    let streamed_text = std::fs::read_to_string(&streamed).expect("readable");
    let collected_text = std::fs::read_to_string(&collected).expect("readable");
    assert_eq!(streamed_text, collected_text);
    std::fs::remove_file(&streamed).ok();
    std::fs::remove_file(&collected).ok();
}
