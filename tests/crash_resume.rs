//! Crash-safety round trips: a quarantined chip must not perturb the
//! rest of the sweep, a killed-then-resumed campaign must reproduce the
//! full-run trace and result, and a sidecar written by a different
//! campaign must be refused.

use std::path::{Path, PathBuf};

use eval_adapt::{
    committed_chips, Campaign, CampaignError, CheckpointError, CheckpointOptions, Scheme,
};
use eval_core::Environment;
use eval_trace::{Collector, StreamingJsonl, Tracer};
use eval_uarch::Workload;

const ENVS: [Environment; 1] = [Environment::TS_ASV];
const SCHEMES: [Scheme; 1] = [Scheme::ExhDyn];
const CHIP_START: &str = "{\"kind\":\"event\",\"event\":\"chip-start\",\"payload\":{\"chip\":";

fn small_campaign(chips: usize) -> Campaign {
    let mut campaign = Campaign::new(chips);
    campaign.profile_budget = 2_000;
    campaign.workloads = vec![Workload::by_name("gzip").expect("workload exists")];
    campaign.threads = 1;
    campaign
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("eval-crash-{name}-{}", std::process::id()))
}

/// Event lines split into the campaign prologue (`None`) followed by
/// one segment per `chip-start` marker.
fn chip_segments(jsonl: &str) -> Vec<(Option<u64>, Vec<String>)> {
    let mut out: Vec<(Option<u64>, Vec<String>)> = vec![(None, Vec::new())];
    for line in jsonl.lines().filter(|l| l.starts_with("{\"kind\":\"event\"")) {
        if let Some(rest) = line.strip_prefix(CHIP_START) {
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            out.push((digits.parse().ok(), Vec::new()));
        }
        let segment = out.last_mut().expect("starts non-empty");
        segment.1.push(line.to_string());
    }
    out
}

/// Drops the lines legitimately excluded from the cross-run
/// byte-identity contract: span timings, `*_us`/`*_ns`/`*_ms` digests,
/// and the resume accounting counter that only a resumed run carries.
fn deterministic_lines(text: &str) -> Vec<String> {
    text.lines()
        .filter(|l| !l.contains("\"kind\":\"span\""))
        .filter(|l| !l.contains("_us\"") && !l.contains("_ns\"") && !l.contains("_ms\""))
        .filter(|l| !l.contains("campaign.chips_resumed"))
        .map(str::to_string)
        .collect()
}

#[test]
fn a_quarantined_chip_leaves_the_other_chips_bit_identical() {
    let campaign = small_campaign(3);
    let clean_sink = Collector::new();
    let clean = campaign
        .run_traced(&ENVS, &SCHEMES, Tracer::new(&clean_sink))
        .expect("clean campaign runs");
    assert!(clean.chips_failed.is_empty());

    let mut faulty = small_campaign(3);
    faulty.fail_chip = Some(1);
    let faulty_sink = Collector::new();
    let quarantined = faulty
        .run_traced(&ENVS, &SCHEMES, Tracer::new(&faulty_sink))
        .expect("sweep continues past the quarantined chip");
    assert_eq!(quarantined.chips_failed.len(), 1);
    assert_eq!(quarantined.chips_failed[0].chip, 1);
    assert!(
        quarantined.chips_failed[0].error.contains("injected"),
        "{:?}",
        quarantined.chips_failed
    );

    // The surviving chips' event streams must not move by a byte: the
    // faulty trace is the clean trace minus chip 1's segment.
    let mut expected = chip_segments(&clean_sink.jsonl());
    expected.retain(|(chip, _)| *chip != Some(1));
    assert_eq!(chip_segments(&faulty_sink.jsonl()), expected);

    // And the quarantine is visible to observability: one failed chip.
    assert!(
        faulty_sink.jsonl().contains("campaign.chips_failed"),
        "chips_failed counter missing from the trace"
    );
}

#[test]
fn all_chips_failing_is_a_typed_error() {
    let mut faulty = small_campaign(1);
    faulty.fail_chip = Some(0);
    let err = faulty
        .run_traced(&ENVS, &SCHEMES, Tracer::new(&Collector::new()))
        .expect_err("nothing to merge");
    assert!(matches!(err, CampaignError::AllChipsFailed { .. }), "{err:?}");
}

#[test]
fn kill_after_two_chips_then_resume_reproduces_the_full_run() {
    let trace_full = scratch("full.jsonl");
    let ckpt_full = scratch("full.ckpt.jsonl");
    let trace_crash = scratch("crash.jsonl");
    let ckpt_crash = scratch("crash.ckpt.jsonl");
    for p in [&trace_full, &ckpt_full, &trace_crash, &ckpt_crash] {
        std::fs::remove_file(p).ok();
    }

    let campaign = small_campaign(3);
    let stream = StreamingJsonl::create(&trace_full).expect("creates trace");
    let full = campaign
        .run_checkpointed(
            &ENVS,
            &SCHEMES,
            Tracer::new(&stream),
            &CheckpointOptions::fresh(&ckpt_full),
        )
        .expect("full campaign runs");
    stream.finish().expect("finishes");

    // Forge the crash state: the trace holds chips 0 and 1 plus a torn
    // partial line, the sidecar holds the header and two chip records —
    // exactly what a kill between chip 2's flush and its commit leaves.
    let full_text = std::fs::read_to_string(&trace_full).expect("readable");
    let mut crash_trace = String::new();
    for line in full_text.lines() {
        if !line.starts_with("{\"kind\":\"event\"") || line.starts_with(&format!("{CHIP_START}2")) {
            break;
        }
        crash_trace.push_str(line);
        crash_trace.push('\n');
    }
    crash_trace.push_str("{\"kind\":\"event\",\"event\":\"chip-sta");
    std::fs::write(&trace_crash, &crash_trace).expect("writes crash trace");
    let ckpt_text = std::fs::read_to_string(&ckpt_full).expect("readable");
    let crash_ckpt: String = ckpt_text.lines().take(3).map(|l| format!("{l}\n")).collect();
    std::fs::write(&ckpt_crash, crash_ckpt).expect("writes crash sidecar");

    // Resume exactly the way `TraceSession` does: reconcile the trace
    // against the sidecar's committed count, then continue the campaign.
    let committed = committed_chips(&ckpt_crash).expect("sidecar loads");
    assert_eq!(committed, 2);
    let stream = StreamingJsonl::resume(&trace_crash, committed).expect("trace reconciles");
    let resumed = campaign
        .run_checkpointed(
            &ENVS,
            &SCHEMES,
            Tracer::new(&stream),
            &CheckpointOptions::resuming(&ckpt_crash),
        )
        .expect("resumed campaign runs");
    stream.finish().expect("finishes");

    // The merged result and the deterministic trace lines are
    // indistinguishable from the uninterrupted run.
    assert_eq!(resumed, full);
    let resumed_text = std::fs::read_to_string(&trace_crash).expect("readable");
    assert_eq!(
        deterministic_lines(&resumed_text),
        deterministic_lines(&full_text)
    );
    assert!(
        resumed_text.contains("campaign.chips_resumed"),
        "resume accounting counter missing"
    );

    for p in [&trace_full, &ckpt_full, &trace_crash, &ckpt_crash] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn resume_refuses_a_sidecar_from_a_different_campaign() {
    let ckpt = scratch("mismatch.ckpt.jsonl");
    std::fs::remove_file(&ckpt).ok();

    small_campaign(2)
        .run_checkpointed(
            &ENVS,
            &SCHEMES,
            Tracer::new(&Collector::new()),
            &CheckpointOptions::fresh(&ckpt),
        )
        .expect("first campaign runs");

    let mut reseeded = small_campaign(2);
    reseeded.base_seed ^= 1;
    let err = reseeded
        .run_checkpointed(
            &ENVS,
            &SCHEMES,
            Tracer::new(&Collector::new()),
            &CheckpointOptions::resuming(&ckpt),
        )
        .expect_err("fingerprints differ");
    assert!(
        matches!(
            err,
            CampaignError::Checkpoint(CheckpointError::FingerprintMismatch { .. })
        ),
        "{err:?}"
    );
    std::fs::remove_file(&ckpt).ok();
}

/// `Path` round-trip guard for the helpers above.
#[test]
fn chip_segments_split_on_markers() {
    let jsonl = format!(
        "{CHIP_START}0}}}}\n{{\"kind\":\"event\",\"event\":\"x\"}}\n{CHIP_START}1}}}}\n"
    );
    let segs = chip_segments(&jsonl);
    assert_eq!(segs.len(), 3);
    assert_eq!(segs[1].0, Some(0));
    assert_eq!(segs[1].1.len(), 2);
    assert_eq!(segs[2].0, Some(1));
    let _: &Path = &scratch("x");
}
