//! Shape tests against the paper's evaluation: a miniature version of the
//! Figures 10–12 campaign must reproduce the orderings §6 establishes.
//! (The full-scale protocol lives in the `eval-bench` binaries.)

use eval::prelude::*;

/// A small but meaningful campaign: 3 chips, 2 workloads (one int-heavy,
/// one fp/memory-heavy).
fn mini_campaign() -> Campaign {
    let mut c = Campaign::new(3);
    c.profile_budget = 4_000;
    c.workloads = vec![
        Workload::by_name("crafty").expect("exists"),
        Workload::by_name("swim").expect("exists"),
    ];
    c.training = TrainingBudget {
        examples: 60,
        ..TrainingBudget::default()
    };
    c
}

#[test]
fn figure10_shape_baseline_ts_asv_ordering() {
    let c = mini_campaign();
    let r = c.run(&[Environment::TS, Environment::TS_ASV], &[Scheme::ExhDyn]).expect("campaign runs");

    // Baseline loses a large fraction of nominal frequency (paper: 22%).
    assert!(
        r.baseline.freq_rel > 0.6 && r.baseline.freq_rel < 0.9,
        "baseline freq_rel = {}",
        r.baseline.freq_rel
    );
    // NoVar is the 1.0 reference.
    assert!((r.novar.freq_rel - 1.0).abs() < 1e-9);

    let ts = r.cell(Environment::TS, Scheme::ExhDyn).expect("cell");
    let asv = r.cell(Environment::TS_ASV, Scheme::ExhDyn).expect("cell");
    // Timing speculation recovers a good chunk; ASV recovers more.
    assert!(ts.freq_rel > r.baseline.freq_rel + 0.05);
    assert!(asv.freq_rel > ts.freq_rel + 0.03);
    // Performance follows the same ordering with smaller magnitude.
    assert!(asv.perf_rel > ts.perf_rel);
    assert!(
        (asv.perf_rel - ts.perf_rel) < (asv.freq_rel - ts.freq_rel) + 1e-9,
        "performance deltas are damped versions of frequency deltas"
    );
}

#[test]
fn figure12_shape_power_ordering_and_cap() {
    let c = mini_campaign();
    let r = c.run(&[Environment::TS_ASV], &[Scheme::ExhDyn]).expect("campaign runs");
    let asv = r.cell(Environment::TS_ASV, Scheme::ExhDyn).expect("cell");
    // Baseline runs slower, hence cooler and cheaper than NoVar.
    assert!(r.baseline.power_w < r.novar.power_w);
    // Mitigation spends power, but never past PMAX.
    assert!(asv.power_w > r.novar.power_w);
    assert!(asv.power_w <= c.config.constraints.p_max_w + 1e-6);
}

#[test]
fn fuzzy_dyn_tracks_exh_dyn() {
    // Fidelity needs the real training budget (the mini one elsewhere
    // trades accuracy for test speed).
    let mut c = mini_campaign();
    c.training = TrainingBudget::default();
    let r = c.run(&[Environment::TS_ASV], &[Scheme::FuzzyDyn, Scheme::ExhDyn]).expect("campaign runs");
    let fz = r.cell(Environment::TS_ASV, Scheme::FuzzyDyn).expect("cell");
    let ex = r.cell(Environment::TS_ASV, Scheme::ExhDyn).expect("cell");
    // "The difference between using a fuzzy adaptation scheme instead of
    // exhaustive search is practically negligible" (§6.2).
    assert!(
        (fz.freq_rel - ex.freq_rel).abs() < 0.08,
        "fuzzy {} vs exhaustive {}",
        fz.freq_rel,
        ex.freq_rel
    );
    assert!((fz.perf_rel - ex.perf_rel).abs() < 0.06);
    // Fuzzy must also respect the power budget.
    assert!(fz.power_w <= c.config.constraints.p_max_w + 1e-6);
}

#[test]
fn static_is_conservative() {
    let c = mini_campaign();
    let r = c.run(&[Environment::TS_ASV], &[Scheme::Static, Scheme::ExhDyn]).expect("campaign runs");
    let st = r.cell(Environment::TS_ASV, Scheme::Static).expect("cell");
    let dy = r.cell(Environment::TS_ASV, Scheme::ExhDyn).expect("cell");
    assert!(
        dy.freq_rel >= st.freq_rel,
        "dynamic {} must be at least static {}",
        dy.freq_rel,
        st.freq_rel
    );
}

#[test]
fn outcomes_cover_the_figure13_vocabulary() {
    let c = mini_campaign();
    let r = c.run(&[Environment::TS_ASV], &[Scheme::ExhDyn]).expect("campaign runs");
    let cell = r.cell(Environment::TS_ASV, Scheme::ExhDyn).expect("cell");
    assert!(cell.outcomes.total() > 0);
    let covered: f64 = Outcome::ALL
        .iter()
        .map(|o| cell.outcomes.fraction(*o))
        .sum();
    assert!((covered - 1.0).abs() < 1e-9, "fractions must sum to 1");
}
