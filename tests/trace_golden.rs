//! Golden trace stream: the `"kind":"event"` JSONL lines of a mini
//! campaign are byte-identical across runs and across thread counts.
//! Span lines and `*_us`/`*_ns` metrics carry wall-clock timings and are
//! deliberately outside this contract.

use eval::prelude::*;
use eval_trace::{Collector, Tracer};

fn mini_campaign() -> Campaign {
    let mut c = Campaign::new(2);
    c.profile_budget = 3_000;
    c.workloads = vec![
        Workload::by_name("swim").expect("exists"),
        Workload::by_name("crafty").expect("exists"),
    ];
    c
}

fn traced_event_lines(threads: usize) -> (CampaignResult, Vec<String>) {
    let mut c = mini_campaign();
    c.threads = threads;
    let sink = Collector::new();
    let result = c
        .run_traced(
            &[Environment::TS],
            &[Scheme::Static, Scheme::ExhDyn],
            Tracer::new(&sink),
        )
        .expect("campaign runs");
    (result, sink.event_lines())
}

#[test]
fn event_stream_is_identical_across_runs_and_thread_counts() {
    let (r1, e1) = traced_event_lines(1);
    let (r2, e2) = traced_event_lines(2);
    let (r3, e3) = traced_event_lines(1);
    assert_eq!(r1, r2, "thread count must not change results");
    assert_eq!(r1, r3, "repeated runs must merge identical results");
    assert_eq!(e1, e2, "thread count must not change the event stream");
    assert_eq!(e1, e3, "repeated runs must emit identical events");
    assert!(!e1.is_empty());
}

#[test]
fn event_stream_shape_is_parseable_and_ordered() {
    let (_, events) = traced_event_lines(1);
    // Every line is a single flat JSON object tagged as an event.
    for line in &events {
        assert!(line.starts_with("{\"kind\":\"event\",\"event\":\""), "{line}");
        assert!(line.ends_with('}'), "{line}");
        assert_eq!(line.matches('\n').count(), 0, "{line}");
    }
    // The stream opens with the campaign header, and decisions from both
    // schemes appear.
    assert!(events[0].contains("\"event\":\"campaign-start\""));
    assert!(events[0].contains("\"chips\":2"));
    let decisions: Vec<&String> = events
        .iter()
        .filter(|l| l.contains("\"event\":\"decision\""))
        .collect();
    assert!(!decisions.is_empty());
    assert!(decisions.iter().any(|l| l.contains("\"scheme\":\"static\"")));
    assert!(decisions
        .iter()
        .any(|l| l.contains("\"scheme\":\"exhaustive\"")));
    // Decisions are labeled with the requested workloads.
    for w in ["swim", "crafty"] {
        assert!(
            decisions
                .iter()
                .any(|l| l.contains(&format!("\"workload\":\"{w}\""))),
            "no decision for {w}"
        );
    }
}

#[test]
fn traced_and_untraced_campaigns_agree() {
    let c = mini_campaign();
    let plain = c
        .run(&[Environment::TS], &[Scheme::Static, Scheme::ExhDyn])
        .expect("campaign runs");
    let (traced, _) = traced_event_lines(0);
    assert_eq!(plain, traced, "tracing must not perturb results");
}
