//! # eval — a reproduction of *EVAL: Utilizing Processors with
//! Variation-Induced Timing Errors* (MICRO 2008)
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`variation`] — VARIUS-style within-die process-variation maps;
//! * [`timing`] — VATS-style path-delay and `PE(f)` error models;
//! * [`power`] — Equations 6–9: power, leakage, thermal fixed point;
//! * [`uarch`] — the out-of-order core model, synthetic SPEC-like
//!   workloads, Diva checker and BBV phase detector;
//! * [`fuzzy`] — the trainable fuzzy controller of Appendix A;
//! * [`core`] — the EVAL framework: chips, subsystems, environments,
//!   constraints and the Equation-5 performance model;
//! * [`adapt`] — high-dimensional dynamic adaptation: the `Freq`/`Power`
//!   algorithms (exhaustive and fuzzy), structure choices, retuning
//!   cycles and the campaign harness.
//!
//! ## Quickstart
//!
//! ```
//! use eval::prelude::*;
//!
//! // Manufacture a chip and ask how fast it can safely go.
//! let config = EvalConfig::micro08();
//! let factory = ChipFactory::new(config.clone());
//! let chip = factory.chip(1);
//! let fvar = chip.core(0).fvar_nominal(&config).get();
//! assert!(fvar < config.f_nominal_ghz); // variation costs frequency...
//!
//! // ...which high-dimensional dynamic adaptation wins back.
//! let w = Workload::by_name("swim").unwrap();
//! let profile = profile_workload(&w, 4_000, 1);
//! let decision = decide_phase(
//!     &config,
//!     chip.core(0),
//!     &ExhaustiveOptimizer::new(),
//!     Environment::TS_ASV,
//!     &profile.phases[0],
//!     w.class,
//!     profile.rp_cycles,
//!     config.th_c,
//! );
//! assert!(decision.f_ghz > fvar);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use eval_adapt as adapt;
pub use eval_core as core;
pub use eval_fuzzy as fuzzy;
pub use eval_power as power;
pub use eval_timing as timing;
pub use eval_uarch as uarch;
pub use eval_units as units;
pub use eval_variation as variation;

/// The most commonly used items, in one import.
pub mod prelude {
    pub use eval_adapt::{
        decide_phase, fidelity_table, retune, AdaptationTimeline, AdaptiveSystem, Campaign,
        CampaignResult, CellResult, ExhaustiveOptimizer, FuzzyOptimizer, Optimizer, Outcome,
        GlobalDvfsOptimizer, PhaseDecision, RetuneResult, RuntimeEvent, Scheme, SubsystemScene,
        TrainingBudget,
    };
    pub use eval_core::{
        AreaBreakdown, ChipFactory, ChipModel, Constraints, CoreModel, Environment, EvalConfig,
        FuChoice, OperatingConditions, OperatingPoint, PerfModel, QueueChoice, SubsystemId,
        SubsystemKind, VariantSelection, FREQ_LADDER, N_SUBSYSTEMS, VBB_LADDER, VDD_LADDER,
    };
    pub use eval_fuzzy::{FuzzyController, Normalizer, TrainingConfig};
    pub use eval_uarch::{
        profile_workload, Checker, PhaseDetector, PhaseProfile, TraceGenerator, Workload,
        WorkloadClass, WorkloadProfile,
    };
    pub use eval_variation::{ChipGrid, ChipMap, DeviceParams, VariationModel, VariationParams};
}
